//! A minimal, dependency-free JSON value used for the machine-readable
//! benchmark payloads (`ExperimentReport::data`, `BENCH_results.json`).
//!
//! The workspace builds in fully offline environments, so `serde_json`
//! cannot be assumed; this crate exposes the small subset of its API the
//! benchmark harness relies on: a [`Json`] value with indexing and
//! accessors, a [`json!`] constructor macro, compact [`std::fmt::Display`]
//! output, and a [`Json::pretty`] printer.
//!
//! [`Json::parse`] is hardened for untrusted input (the `rcpd` server
//! feeds it request bodies straight off the wire): duplicate object keys
//! and trailing garbage are rejected, nesting is capped at
//! [`MAX_DEPTH`] so a hostile document cannot overflow the recursive
//! parser's stack, and every failure is a typed [`ParseError`] carrying
//! the byte offset — which the server maps to a structured `400`, never
//! a `500`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact, unlike `f64`).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] value, used by the [`json!`] macro.
pub trait ToJson {
    /// Converts `self` into a [`Json`] value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
int_to_json!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

/// Builds a [`Json`] value with a literal-like syntax.
///
/// Object values must be single expressions; nest another `json!` call for
/// sub-objects: `json!({"outer": json!({"inner": 1})})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Json::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Json::Array(vec![ $( $crate::ToJson::to_json(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Json::Object(vec![
            $( ($key.to_string(), $crate::ToJson::to_json(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

impl Json {
    /// The value at an object key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(elems) => Some(elems),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (integers convert), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document (the inverse of [`Json::pretty`] /
    /// `Display`): the benchmark harness loads a committed
    /// `BENCH_results.json` for `--baseline` diffing, and the `rcpd`
    /// server parses request bodies, so the parser treats its input as
    /// untrusted — duplicate object keys and trailing garbage are
    /// rejected, and nesting deeper than [`MAX_DEPTH`] is a typed error
    /// instead of a stack overflow.
    ///
    /// Numbers without a fraction or exponent that fit an `i64` parse as
    /// [`Json::Int`]; everything else numeric parses as [`Json::Float`].
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input"));
        }
        Ok(value)
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep a decimal point so the value round-trips as float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{v:.1}"));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(elems) => write_seq(out, indent, '[', ']', elems.iter(), |out, v, ind| {
                v.write(out, ind)
            }),
            Json::Object(entries) => {
                write_seq(out, indent, '{', '}', entries.iter(), |out, (k, v), ind| {
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, ind);
                })
            }
        }
    }
}

/// The deepest array/object nesting [`Json::parse`] accepts.  The parser
/// recurses per nesting level, so the cap keeps a hostile document (e.g.
/// ten thousand `[`s) from overflowing the stack; 128 levels is far
/// beyond any payload the workspace produces.
pub const MAX_DEPTH: usize = 128;

/// A typed [`Json::parse`] failure: what went wrong and where.
///
/// The server maps this to a structured `400 Bad Request` (the offset
/// lets clients locate the defect); `Display` renders
/// `"<message> at byte <offset>"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// The diagnostic.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    /// Bumps the nesting depth on entry to an array or object; the cap
    /// turns a hostile deeply-nested document into a typed error before
    /// the recursion can exhaust the stack.
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("unexpected input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(elems));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut entries: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(ParseError {
                    offset: key_offset,
                    message: format!("duplicate key {key:?}"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by our printer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| ParseError {
                offset: start,
                message: format!("invalid number {text:?}"),
            })
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        if let Some(i) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(i));
        }
        write_item(out, item, inner);
    }
    if let Some(i) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(i));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        static NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, idx: usize) -> &Json {
        static NULL: Json = Json::Null;
        match self {
            Json::Array(elems) => elems.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! eq_via_to_json {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Json {
            fn eq(&self, other: &$t) -> bool {
                *self == other.to_json()
            }
        }
        impl PartialEq<Json> for $t {
            fn eq(&self, other: &Json) -> bool {
                self.to_json() == *other
            }
        }
    )*};
}
eq_via_to_json!(bool, i32, i64, u64, usize, f64, &str);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_values() {
        let v = json!({
            "a": 1,
            "b": [1, 2, 3],
            "c": json!({"d": "x"}),
        });
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"].as_array().unwrap().len(), 3);
        assert_eq!(v["c"]["d"], "x");
        assert_eq!(v["missing"], Json::Null);
    }

    #[test]
    fn equality_with_primitives() {
        assert_eq!(json!(3), 3);
        assert_eq!(json!(true), true);
        assert_eq!(json!("s"), "s");
        assert_eq!(
            json!([[2, 6]]),
            Json::Array(vec![Json::Array(vec![Json::Int(2), Json::Int(6)])])
        );
    }

    #[test]
    fn maps_become_string_keyed_objects() {
        let mut m = BTreeMap::new();
        m.insert(2i64, 8usize);
        m.insert(4, 6);
        let v = json!({ "per_distance": m });
        assert_eq!(v["per_distance"]["2"], 8);
        assert_eq!(v["per_distance"]["4"], 6);
    }

    #[test]
    fn display_and_pretty_round_trip_shapes() {
        let v = json!({"k": [1, 2], "s": "a\"b"});
        assert_eq!(v.to_string(), "{\"k\": [1,2],\"s\": \"a\\\"b\"}");
        assert!(v.pretty().contains("\n  \"k\": [\n"));
    }

    #[test]
    fn parse_round_trips_printer_output() {
        let v = json!({
            "a": 1,
            "b": json!([1, -2, 3.5]),
            "c": json!({"d": "x\n\"y\"", "e": Json::Null, "f": true}),
            "g": false,
            "empty_arr": Vec::<i64>::new(),
            "empty_obj": json!({}),
            "big": 1e300,
        });
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_distinguishes_ints_and_floats() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("42.0").unwrap(), Json::Float(42.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"k\" 1}", "tru", "1 2", "[1] x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage_with_offset() {
        let err = Json::parse("{\"k\": 1} extra").unwrap_err();
        assert_eq!(err.message, "trailing input");
        assert_eq!(err.offset, 9);
        assert!(Json::parse("null null").is_err());
        assert!(Json::parse("42x").is_err());
    }

    #[test]
    fn parse_rejects_duplicate_keys() {
        let err = Json::parse("{\"a\": 1, \"b\": 2, \"a\": 3}").unwrap_err();
        assert_eq!(err.message, "duplicate key \"a\"");
        assert_eq!(err.offset, 17);
        // Duplicates inside nested objects are caught too.
        assert!(Json::parse("{\"outer\": {\"x\": 1, \"x\": 2}}").is_err());
        // Same key at different nesting levels is fine.
        assert!(Json::parse("{\"x\": {\"x\": 1}}").is_ok());
    }

    #[test]
    fn parse_caps_nesting_depth() {
        let deep = |n: usize| format!("{}0{}", "[".repeat(n), "]".repeat(n));
        assert!(Json::parse(&deep(MAX_DEPTH)).is_ok());
        let err = Json::parse(&deep(MAX_DEPTH + 1)).unwrap_err();
        assert!(err.message.contains("nesting deeper than"), "{err}");
        // Objects count toward the same budget as arrays.
        let mut doc = String::new();
        for _ in 0..=MAX_DEPTH {
            doc.push_str("{\"k\":");
        }
        doc.push('0');
        doc.push_str(&"}".repeat(MAX_DEPTH + 1));
        assert!(Json::parse(&doc).is_err());
        // Depth is nesting, not total count: many siblings are fine.
        let wide = format!("[{}]", vec!["[0]"; 1000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn string_escapes_round_trip() {
        let originals = [
            "plain",
            "quote \" backslash \\ slash /",
            "newline \n return \r tab \t",
            "backspace \u{8} formfeed \u{c} bell \u{7}",
            "control \u{1} \u{1f} boundary \u{20}",
            "unicode \u{fffd} snowman \u{2603} cjk \u{4e16}\u{754c}",
        ];
        for s in originals {
            let doc = Json::Str(s.to_string()).to_string();
            assert_eq!(
                Json::parse(&doc).unwrap(),
                Json::Str(s.to_string()),
                "{s:?} must round-trip through {doc:?}"
            );
        }
        // Explicit \u escapes decode even when the printer would emit the
        // character raw.
        assert_eq!(
            Json::parse("\"\\u2603\"").unwrap(),
            Json::Str("\u{2603}".to_string())
        );
        assert!(Json::parse("\"\\u26\"").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
    }

    #[test]
    fn parse_errors_are_typed() {
        let err = Json::parse("{\"k\" 1}").unwrap_err();
        assert_eq!(err.message, "expected ':'");
        assert_eq!(err.offset, 5);
        assert_eq!(err.to_string(), "expected ':' at byte 5");
        // ParseError implements std::error::Error for `?`-friendly callers.
        let _: &dyn std::error::Error = &err;
    }
}
