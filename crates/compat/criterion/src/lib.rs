//! A dependency-free micro-benchmark harness exposing the subset of the
//! `criterion` crate's API that this workspace's benches use.
//!
//! The workspace builds in fully offline environments where crates.io is
//! unreachable, so the real `criterion` cannot be fetched.  This drop-in
//! stand-in keeps every `benches/*.rs` file source-compatible: it times each
//! closure over a fixed number of samples with `std::time::Instant` and
//! prints a `median / mean / min` summary line per benchmark.  Statistical
//! rigor (outlier analysis, regression detection) is explicitly out of
//! scope; swap the path dependency back to crates.io `criterion` when a
//! registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The top-level benchmark driver, handed to each registered bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.default_sample_size,
            _c: self,
        }
    }

    /// Registers and immediately runs a stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_bench(id, sample_size, f);
        self
    }
}

/// A named parameter attached to a benchmark id
/// (`BenchmarkId::new("classify", 60)`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value into one id.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    group: String,
    sample_size: usize,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark named `id` within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{id}", self.group), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.group, id.id),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Times a single benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each run.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One untimed warm-up run.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "  {id}: median {} | mean {} | min {} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(samples[0]),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collects bench functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // 3 timed samples + 1 warm-up.
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
