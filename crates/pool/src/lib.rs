//! A `scope`/`par_map` facility on OS threads.
//!
//! This is the generalisation of the `ParallelExecutor` worker pool into a
//! reusable building block: any data-parallel, *non-schedule* work — sharded
//! dependence analysis over reference pairs, sharded trace construction over
//! statement-instance ranges, per-array barrier merges — runs through
//! [`par_map`] instead of hand-rolling its own `std::thread::scope` loop.
//! It sits directly above `rcp-guard` and below every other workspace crate,
//! so both the analysis front end (`rcp-depend`) and the runtime
//! (`rcp-runtime`, which re-exports this crate as `rcp_runtime::pool`) can
//! share it without a dependency cycle.
//!
//! Design points:
//!
//! * **Dynamic self-scheduling.** Workers claim the next unclaimed item
//!   from a shared atomic cursor (like OpenMP `schedule(dynamic)`), so
//!   uneven item costs load-balance automatically.
//! * **Deterministic results.** The output vector is in input order no
//!   matter which worker computed which item, so callers can merge
//!   per-shard results deterministically.
//! * **Inline fast path.** With one thread (or one item) the closure runs
//!   on the caller — no spawning, no synchronisation — so callers can use
//!   `par_map` unconditionally and let the thread count decide.
//! * **Panic propagation with payloads.** A panicking item panics the
//!   caller — but unlike raw `std::thread::scope` (whose join replaces the
//!   payload with a generic "a scoped thread panicked") the original
//!   payload is carried across, enriched with the item index via
//!   [`rcp_guard::resume_with_context`].  Budget-exhaustion payloads
//!   ([`rcp_guard::BudgetExceeded`]) pass through untouched, and the
//!   remaining workers stop claiming items once one has failed.
//! * **Guard propagation.** The caller's installed budget guard
//!   ([`rcp_guard::current`]) is re-installed inside every worker, so
//!   checkpoints inside `f` keep charging the same budget across threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Registry counter handles, resolved once: `par_map` can be called in
/// tight benchmark loops, and a handle bump is one relaxed `fetch_add`
/// versus a registry-map lookup per call.
struct PoolMetrics {
    calls: rcp_trace::Counter,
    items: rcp_trace::Counter,
    inline: rcp_trace::Counter,
    workers: rcp_trace::Counter,
    shards: rcp_trace::Counter,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        calls: rcp_trace::counter("pool.par_map.calls"),
        items: rcp_trace::counter("pool.par_map.items"),
        inline: rcp_trace::counter("pool.par_map.inline"),
        workers: rcp_trace::counter("pool.par_map.workers"),
        shards: rcp_trace::counter("pool.shard_ranges.shards"),
    })
}

/// Applies `f` to every item of `items` on up to `n_threads` OS threads and
/// returns the results **in input order**.
///
/// Items are claimed dynamically (self-scheduling), so the assignment of
/// items to threads is non-deterministic but the result vector is not.
/// With `n_threads <= 1` or fewer than two items the map runs inline on the
/// calling thread.
///
/// # Panics
/// Propagates the first panic raised by `f`, keeping its payload (see the
/// crate docs).
pub fn par_map<T: Sync, R: Send>(
    n_threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    par_map_indexed(n_threads, items, |_, item| f(item))
}

/// Recovers a possibly poisoned slot lock: the protected value is a plain
/// `Option<R>` that is only ever *assigned*, so a poison marker (left by a
/// panic elsewhere in the scope) carries no invariant to protect.
fn recover<'a, T>(lock: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// [`par_map`] variant whose closure also receives the item index.
///
/// # Panics
/// Propagates the first panic raised by `f`, keeping its payload (see the
/// crate docs).
pub fn par_map_indexed<T: Sync, R: Send>(
    n_threads: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let workers = n_threads.max(1).min(items.len());
    let m = metrics();
    m.calls.inc();
    m.items.add(items.len() as u64);
    if workers <= 1 {
        m.inline.inc();
        return items.iter().enumerate().map(|(k, it)| f(k, it)).collect();
    }
    m.workers.add(workers as u64);
    let guard = rcp_guard::current();
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let first_panic: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                rcp_guard::maybe_scope(guard.as_ref(), || loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(k) else {
                        break;
                    };
                    match catch_unwind(AssertUnwindSafe(|| f(k, item))) {
                        Ok(result) => *recover(&slots[k]) = Some(result),
                        Err(payload) => {
                            failed.store(true, Ordering::Relaxed);
                            let mut slot = recover(&first_panic);
                            if slot.is_none() {
                                *slot = Some((k, payload));
                            }
                            break;
                        }
                    }
                })
            });
        }
    });
    if let Some((k, payload)) = recover(&first_panic).take() {
        rcp_guard::resume_with_context(payload, format!("par_map item {k}"));
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(k, slot)| {
            let value = match slot.into_inner() {
                Ok(value) => value,
                Err(poisoned) => poisoned.into_inner(),
            };
            match value {
                Some(result) => result,
                // Unreachable: with no recorded panic, every claimed index
                // < items.len() was computed before its worker exited.
                None => unreachable!("par_map item {k} not computed"),
            }
        })
        .collect()
}

/// Splits `0..n` into at most `shards` contiguous, near-equal, non-empty
/// ranges (fewer when `n < shards`).  The ranges partition `0..n` in order,
/// so shard-indexed results can be merged deterministically.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1).min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    metrics().shards.add(shards as u64);
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map(threads, &items, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_indexed_sees_correct_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = par_map_indexed(3, &items, |k, s| format!("{k}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(4, &empty, |x| *x).is_empty());
        assert_eq!(par_map(4, &[42], |x| *x), vec![42]);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let outcome = std::panic::catch_unwind(|| {
            par_map(4, &items, |&x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(outcome.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn panic_payloads_survive_with_item_context() {
        let items: Vec<usize> = (0..64).collect();
        let result = rcp_guard::catch(|| {
            par_map(4, &items, |&x| {
                if x == 13 {
                    panic!("solver bug on item {x}");
                }
                x
            })
        });
        match result {
            Err(rcp_guard::Interrupt::Panic(p)) => {
                assert_eq!(p.message, "solver bug on item 13");
                assert_eq!(p.context, vec!["par_map item 13".to_string()]);
            }
            other => panic!("expected a captured panic, got {other:?}"),
        }
    }

    #[test]
    fn budget_guards_propagate_into_workers() {
        use rcp_guard::{BudgetSpec, Guard, Interrupt, Stage};
        let items: Vec<usize> = (0..256).collect();
        let guard = Guard::new(BudgetSpec::unlimited().with_max_work(32));
        let result = rcp_guard::scope(&guard, || {
            rcp_guard::catch(|| {
                par_map(4, &items, |&x| {
                    rcp_guard::tick(Stage::Analysis, 1);
                    x
                })
            })
        });
        match result {
            Err(Interrupt::Budget(b)) => {
                assert_eq!(b.stage, Stage::Analysis);
                assert_eq!(b.limit, 32);
            }
            other => panic!("expected budget exhaustion from inside workers, got {other:?}"),
        }
        // Unlimited guard: all items complete and the shared counter saw
        // every tick from every worker thread.
        let guard = Guard::new(BudgetSpec::unlimited());
        let out = rcp_guard::scope(&guard, || {
            par_map(4, &items, |&x| {
                rcp_guard::tick(Stage::Analysis, 1);
                x
            })
        });
        assert_eq!(out.len(), items.len());
        assert_eq!(guard.work_spent(), items.len() as u64);
    }

    #[test]
    fn shard_ranges_partition_the_input() {
        for n in [0usize, 1, 2, 5, 16, 17, 100] {
            for shards in [1usize, 2, 3, 4, 8, 200] {
                let ranges = shard_ranges(n, shards);
                assert!(ranges.len() <= shards.max(1));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "ranges must be contiguous");
                    assert!(!r.is_empty(), "no empty shards");
                    next = r.end;
                }
                assert_eq!(next, n, "ranges must cover 0..{n}");
                if n > 0 {
                    let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let min = lens.iter().min().unwrap();
                    let max = lens.iter().max().unwrap();
                    assert!(max - min <= 1, "near-equal shard sizes");
                }
            }
        }
    }
}
