//! The recurrence equation behind a single pair of coupled references.
//!
//! With one coupled reference pair `X[i·A + a] = X[j·B + b]` and full-rank
//! `A`, `B` (Lemma 1), the dependence equation can be rewritten as the
//! recurrence
//!
//! ```text
//! i = j·T + u      with  T = B·A⁻¹,  u = (b − a)·A⁻¹
//! ```
//!
//! so every iteration has at most one predecessor and one successor and the
//! monotonic dependence chains in the intermediate set are disjoint.  This
//! module computes `T`, `u`, their inverses, follows the recurrence in both
//! directions (with exact rational arithmetic so non-integral neighbours are
//! rejected), and evaluates the Theorem-1 critical-path bound
//! `l ≤ ⌈log_α(L)⌉ + 1` with `α = max(|det T|, |det T⁻¹|)`.

use rcp_depend::CoupledPair;
use rcp_intlin::{IVec, RatMat, Rational};

/// The recurrence `counterpart(x) = x·T + u` derived from a coupled
/// reference pair, together with its inverse map.
#[derive(Clone, Debug)]
pub struct Recurrence {
    /// `T = B·A⁻¹`.
    pub t: RatMat,
    /// `u = (b − a)·A⁻¹`.
    pub u: Vec<Rational>,
    /// `T⁻¹ = A·B⁻¹`.
    pub t_inv: RatMat,
    /// `u' = (a − b)·B⁻¹`, the offset of the inverse map.
    pub u_inv: Vec<Rational>,
}

impl Recurrence {
    /// Builds the recurrence from a coupled reference pair.
    ///
    /// Returns `None` when either access matrix is singular (Lemma 1 does
    /// not apply and the dataflow partitioning must be used instead).
    pub fn from_pair(pair: &CoupledPair) -> Option<Recurrence> {
        let a = &pair.write.matrix;
        let b = &pair.read.matrix;
        if !a.is_full_rank() || !b.is_full_rank() {
            return None;
        }
        let a_inv = a.inverse()?;
        let b_inv = b.inverse()?;
        let t = b.to_rational().mul(&a_inv);
        let t_inv = a.to_rational().mul(&b_inv);
        let diff: Vec<Rational> = pair
            .read
            .offset
            .iter()
            .zip(&pair.write.offset)
            .map(|(&bo, &ao)| Rational::from_int(bo - ao))
            .collect();
        let u = a_inv.apply_row(&transpose_vec(&diff, &a_inv));
        let diff_neg: Vec<Rational> = diff.iter().map(|r| -*r).collect();
        let u_inv = b_inv.apply_row(&transpose_vec(&diff_neg, &b_inv));
        Some(Recurrence { t, u, t_inv, u_inv })
    }

    /// The dimension of the iteration vectors.
    pub fn dim(&self) -> usize {
        self.t.rows()
    }

    /// Applies the forward map `x ↦ x·T + u` (the *i-role* counterpart of an
    /// iteration playing the *j* role in the dependence equation).  Returns
    /// `None` when the image is not an integer point.
    pub fn apply(&self, x: &[i64]) -> Option<IVec> {
        apply_affine(&self.t, &self.u, x)
    }

    /// Applies the inverse map `x ↦ (x − u)·T⁻¹ = x·T⁻¹ + u'`.
    pub fn apply_inverse(&self, x: &[i64]) -> Option<IVec> {
        apply_affine(&self.t_inv, &self.u_inv, x)
    }

    /// `α = max(|det T|, |det T⁻¹|)`, the chain contraction/expansion factor
    /// of Theorem 1.
    pub fn alpha(&self) -> Rational {
        let d = self.t.det().abs();
        let d_inv = self.t_inv.det().abs();
        if d >= d_inv {
            d
        } else {
            d_inv
        }
    }

    /// The Theorem-1 upper bound on the number of iterations of any
    /// recurrence chain inside an iteration space whose maximum Euclidean
    /// distance between two points is `max_distance`:
    /// `l ≤ ⌈log_α(L)⌉ + 1` (only meaningful when `α > 1`).
    ///
    /// Returns `None` when `α ≤ 1`, in which case the theorem gives no
    /// bound.
    pub fn critical_path_bound(&self, max_distance: f64) -> Option<usize> {
        let alpha = self.alpha().to_f64();
        if alpha <= 1.0 {
            return None;
        }
        if max_distance <= 1.0 {
            return Some(1);
        }
        let l = max_distance.ln() / alpha.ln();
        Some(l.ceil() as usize + 1)
    }

    /// The distance vector produced after `k` steps starting from a chain
    /// whose first distance is `d0`: `d_k = d0·Tᵏ` (eq. 6).  Exposed for the
    /// Theorem-1 experiments.
    pub fn distance_after(&self, d0: &[i64], k: usize) -> Vec<Rational> {
        let mut d: Vec<Rational> = d0.iter().map(|&x| Rational::from_int(x)).collect();
        for _ in 0..k {
            d = self.t.apply_row(&d);
        }
        d
    }
}

/// Helper: `apply_row` needs a rational row vector; this converts while
/// checking the dimension against the matrix.
fn transpose_vec(v: &[Rational], m: &RatMat) -> Vec<Rational> {
    assert_eq!(v.len(), m.rows(), "offset dimension mismatch");
    v.to_vec()
}

fn apply_affine(t: &RatMat, u: &[Rational], x: &[i64]) -> Option<IVec> {
    let img = t.apply_int_row(x);
    let mut out = Vec::with_capacity(img.len());
    for (v, off) in img.iter().zip(u) {
        let w = *v + *off;
        match w.as_integer() {
            Some(i) => out.push(i),
            None => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_depend::DependenceAnalysis;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::{ArrayRef, Program};

    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    fn figure2() -> Program {
        Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        )
    }

    fn recurrence_of(p: &Program) -> Recurrence {
        let analysis = DependenceAnalysis::loop_level(p);
        Recurrence::from_pair(&analysis.single_coupled_pair().unwrap()).unwrap()
    }

    #[test]
    fn example1_recurrence_maps() {
        let rec = recurrence_of(&example1());
        assert_eq!(rec.dim(), 2);
        // α = max(|det T|, |det T⁻¹|) = max(1/3, 3) = 3
        assert_eq!(rec.alpha(), Rational::from_int(3));
        // The dependence (2,2) -> (4,4): the write at (2,2) equals the read
        // at (4,4), so the *predecessor* (i-role counterpart) of (4,4) is
        // (2,2): apply() maps j to i.
        assert_eq!(rec.apply(&[4, 4]), Some(vec![2, 2]));
        // and the inverse map goes forward: i -> j.
        assert_eq!(rec.apply_inverse(&[2, 2]), Some(vec![4, 4]));
        // (3,1) -> (7,5) from figure 1.
        assert_eq!(rec.apply_inverse(&[3, 1]), Some(vec![7, 5]));
        // Points whose counterpart is not integral are rejected:
        // i = (j - u)·T⁻¹ requires j1 ≡ 1 (mod 3).
        assert_eq!(rec.apply(&[5, 4]), None);
    }

    #[test]
    fn figure2_recurrence_maps() {
        let rec = recurrence_of(&figure2());
        assert_eq!(rec.dim(), 1);
        // T = B·A⁻¹ = (-1)·(1/2) = -1/2 ; α = max(1/2, 2) = 2.
        assert_eq!(rec.alpha(), Rational::from_int(2));
        // The write at i=6 (element 12) equals the read at j=9 (element
        // 21-9=12): the predecessor of 9 is 6.
        assert_eq!(rec.apply(&[9]), Some(vec![6]));
        assert_eq!(rec.apply_inverse(&[6]), Some(vec![9]));
        // The WHILE-style update of the paper, i' = 21 - 2i, is the inverse
        // map here: 3 -> 15.
        assert_eq!(rec.apply_inverse(&[3]), Some(vec![15]));
        // odd i has no integral forward image under apply() (i = (21-j)/2).
        assert_eq!(rec.apply(&[10]), None);
    }

    #[test]
    fn round_trip_is_identity_where_defined() {
        let rec = recurrence_of(&example1());
        for x in [[4i64, 4], [7, 5], [10, 10], [4, 9]] {
            if let Some(y) = rec.apply(&x) {
                assert_eq!(rec.apply_inverse(&y), Some(x.to_vec()));
            }
        }
    }

    #[test]
    fn theorem1_bound_values() {
        let rec = recurrence_of(&example1());
        // Example 1 text: at most 1 + ⌈log3(sqrt(N1² + N2²))⌉ iterations.
        let l = (300.0f64 * 300.0 + 1000.0 * 1000.0).sqrt();
        let bound = rec.critical_path_bound(l).unwrap();
        assert_eq!(bound, (l.ln() / 3.0f64.ln()).ceil() as usize + 1);
        assert!(bound <= 8);
        // Figure 2 with α = 2 and L = 19.
        let rec2 = recurrence_of(&figure2());
        let bound2 = rec2.critical_path_bound(19.0).unwrap();
        assert_eq!(bound2, 6); // ceil(log2(19)) + 1 = 5 + 1
    }

    #[test]
    fn distances_scale_by_t() {
        // eq. 6: d_k = d0 · T^k.  For example 1, T has det 1/3 and the
        // forward chains (under the inverse map) stretch distances by 3 in
        // the first coordinate.
        let rec = recurrence_of(&example1());
        let d1 = rec.distance_after(&[2, 2], 1);
        // d0·T = (2,2)·T ; T = B·A⁻¹ = A⁻¹ = [[1/3, -2/3], [0, 1]]
        assert_eq!(d1[0], Rational::new(2, 3));
        assert_eq!(d1[1], Rational::new(2, 3));
    }

    #[test]
    fn singular_pair_gives_no_recurrence() {
        // a(I+J, 2I+2J) has a singular access matrix.
        let p = Program::new(
            "singular",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![loop_(
                    "J",
                    c(1),
                    v("N"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write("a", vec![v("I") + v("J"), (v("I") + v("J")) * 2]),
                            ArrayRef::read("a", vec![v("I"), v("J")]),
                        ],
                    )],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        // single_coupled_pair already rejects the singular matrix
        assert!(analysis.single_coupled_pair().is_none());
    }
}
