//! Monotonic dependence chains (Definition 1) and their construction.
//!
//! A *monotonic dependence chain* is a sequence of lexicographically ordered
//! iterations in which each iteration directly depends on a unique
//! immediate predecessor.  Under Lemma 1 (single coupled reference pair with
//! full-rank matrices) the chains inside the intermediate set `P2` are
//! disjoint and each can be executed sequentially as a WHILE loop with an
//! irregular stride, starting from the `W` set.
//!
//! Two constructions are provided:
//!
//! * [`chains_in_intermediate`] — the paper's WHILE chains: start at each
//!   `W` iteration, repeatedly step to the unique successor while it stays
//!   inside `P2`;
//! * [`monotonic_chains`] — the general decomposition of an arbitrary
//!   dependence relation into maximal monotonic chains (used for the
//!   figure-2 illustration where chains bifurcate and the intermediate set
//!   is empty).

use crate::three_set::DenseThreeSet;
use rcp_intlin::IVec;
use rcp_presburger::{DenseRelation, DenseSet};
use std::collections::BTreeSet;

/// A lexicographically increasing chain of directly dependent iterations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// The iterations of the chain in execution order.
    pub iterations: Vec<IVec>,
}

impl Chain {
    /// Number of iterations on the chain.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// True when the chain has no iterations.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// Checks that consecutive iterations are lexicographically increasing
    /// and directly dependent under `rd`.
    pub fn is_monotonic(&self, rd: &DenseRelation) -> bool {
        self.iterations
            .windows(2)
            .all(|w| w[0] < w[1] && rd.contains(&w[0], &w[1]))
    }
}

/// Builds the WHILE-loop chains of the intermediate set: one chain per `W`
/// iteration, following unique successors while the next iteration is still
/// intermediate.  The returned chains partition `P2` when Lemma 1 holds.
pub fn chains_in_intermediate(part: &DenseThreeSet, rd: &DenseRelation) -> Vec<Chain> {
    rcp_guard::tick(rcp_guard::Stage::ChainEnumeration, part.w.len() as u64 + 1);
    rcp_guard::fail_point("core::chains", rcp_guard::Stage::ChainEnumeration);
    let mut chains = Vec::new();
    for start in part.w.iter() {
        let mut chain = Vec::new();
        let mut current = start.clone();
        loop {
            if !part.p2.contains(&current) {
                break;
            }
            chain.push(current.clone());
            // Unique successor inside the dependence relation.
            let succs = rd.successors(&current);
            match succs.first() {
                Some(next) if succs.len() == 1 => current = next.clone(),
                _ => break,
            }
        }
        if !chain.is_empty() {
            chains.push(Chain { iterations: chain });
        }
    }
    chains
}

/// Builds chains as the connected components of the dependence graph
/// restricted to the intermediate set, each ordered lexicographically.
///
/// Unlike [`chains_in_intermediate`] this does not require unique
/// successors, so it tolerates the transitive edges of aggregated
/// loop-level relations (where `t → t+1` and `t → t+2` coexist).  The
/// result is only a valid chain partition when every component is totally
/// ordered with consecutive direct dependences — which
/// [`crate::try_chain_partition`] verifies before accepting it.
pub fn component_chains(p2: &DenseSet, rd: &DenseRelation) -> Vec<Chain> {
    use std::collections::{BTreeMap, VecDeque};
    rcp_guard::tick(rcp_guard::Stage::ChainEnumeration, p2.len() as u64 + 1);
    rcp_guard::fail_point("core::chains", rcp_guard::Stage::ChainEnumeration);
    let points: Vec<IVec> = p2.iter().cloned().collect();
    let index: BTreeMap<&IVec, usize> = points.iter().enumerate().map(|(k, p)| (p, k)).collect();
    // Undirected adjacency restricted to P2.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); points.len()];
    for (src, dst) in rd.iter() {
        if let (Some(&a), Some(&b)) = (index.get(src), index.get(dst)) {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    let mut seen = vec![false; points.len()];
    let mut chains = Vec::new();
    for start in 0..points.len() {
        if seen[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        while let Some(k) = queue.pop_front() {
            component.push(points[k].clone());
            for &n in &adj[k] {
                if !seen[n] {
                    seen[n] = true;
                    queue.push_back(n);
                }
            }
        }
        component.sort();
        chains.push(Chain {
            iterations: component,
        });
    }
    chains
}

/// Decomposes an arbitrary dependence relation into maximal monotonic
/// chains: a chain starts at an iteration that has no predecessor, has a
/// predecessor with several successors, or has several predecessors, and
/// extends while both the current iteration has a unique successor and that
/// successor has a unique predecessor.
pub fn monotonic_chains(rd: &DenseRelation) -> Vec<Chain> {
    let nodes: BTreeSet<IVec> = rd
        .iter()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect();
    let is_start = |p: &IVec| -> bool {
        let preds = rd.predecessors(p);
        match preds.len() {
            0 => true,
            1 => rd.successors(&preds[0]).len() > 1,
            _ => true,
        }
    };
    let mut chains = Vec::new();
    for node in nodes.iter().filter(|p| is_start(p)) {
        // Starting node: walk forward along unique-successor /
        // unique-predecessor edges.
        let mut chain = vec![node.clone()];
        let mut current = node.clone();
        loop {
            let succs = rd.successors(&current);
            if succs.len() != 1 {
                // bifurcation: each outgoing edge becomes its own 2-element
                // chain (handled below), stop here.
                break;
            }
            let next = succs[0].clone();
            if rd.predecessors(&next).len() != 1 {
                break;
            }
            chain.push(next.clone());
            current = next;
        }
        if chain.len() >= 2 {
            chains.push(Chain { iterations: chain });
        }
        // Emit the bifurcating / merging edges out of `current` as separate
        // two-iteration monotonic chains.
        let succs = rd.successors(&current);
        if succs.len() != 1 || rd.predecessors(&succs[0]).len() != 1 {
            for next in succs {
                chains.push(Chain {
                    iterations: vec![current.clone(), next.clone()],
                });
            }
        }
    }
    // Also emit edges into merge points whose source was consumed inside a
    // longer chain (the source had a unique successor but the target has
    // several predecessors and the source was not a start node).
    for (src, dst) in rd.iter() {
        if rd.predecessors(dst).len() > 1
            && rd.successors(src).len() == 1
            && !is_start(src)
            && !chains.iter().any(|c| contains_edge(c, src, dst))
        {
            chains.push(Chain {
                iterations: vec![src.clone(), dst.clone()],
            });
        }
    }
    chains.sort_by(|a, b| a.iterations.cmp(&b.iterations));
    chains.dedup();
    chains
}

fn contains_edge(chain: &Chain, src: &IVec, dst: &IVec) -> bool {
    chain
        .iterations
        .windows(2)
        .any(|w| &w[0] == src && &w[1] == dst)
}

/// The length of the longest chain (the critical path of the intermediate
/// set), in iterations.
pub fn longest_chain(chains: &[Chain]) -> usize {
    chains.iter().map(|c| c.len()).max().unwrap_or(0)
}

/// Checks that the chains cover `P2` exactly once (the disjointness of
/// Lemma 1).  Returns violated invariants.
pub fn validate_chain_cover(chains: &[Chain], p2: &DenseSet) -> Vec<String> {
    let mut problems = Vec::new();
    let mut seen: BTreeSet<IVec> = BTreeSet::new();
    for c in chains {
        for it in &c.iterations {
            if !p2.contains(it) {
                problems.push(format!("chain iteration {:?} is not intermediate", it));
            }
            if !seen.insert(it.clone()) {
                problems.push(format!("iteration {:?} appears on two chains", it));
            }
        }
    }
    if seen.len() != p2.len() {
        problems.push(format!(
            "chains cover {} of {} intermediate iterations",
            seen.len(),
            p2.len()
        ));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::three_set::DenseThreeSet;
    use rcp_depend::DependenceAnalysis;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::{ArrayRef, Program};
    use rcp_presburger::DenseSet;

    fn figure2_relation() -> DenseRelation {
        let p = Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        let (_, rel) = analysis.bind_params(&[]);
        DenseRelation::from_relation(&rel)
    }

    #[test]
    fn figure2_monotonic_chain_splitting() {
        // The solution chain 6 -> 9 -> 3 -> 15 must be split into the
        // monotonic chains 6 -> 9, 3 -> 9 and 3 -> 15.
        let rd = figure2_relation();
        let chains = monotonic_chains(&rd);
        let as_pairs: Vec<Vec<i64>> = chains
            .iter()
            .map(|c| c.iterations.iter().map(|p| p[0]).collect())
            .collect();
        assert!(
            as_pairs.contains(&vec![6, 9]),
            "missing 6 -> 9 in {:?}",
            as_pairs
        );
        assert!(
            as_pairs.contains(&vec![3, 9]),
            "missing 3 -> 9 in {:?}",
            as_pairs
        );
        assert!(
            as_pairs.contains(&vec![3, 15]),
            "missing 3 -> 15 in {:?}",
            as_pairs
        );
        // every chain is monotonic and at most 2 long (paper: "each
        // monotonic chain has only two iterations")
        for c in &chains {
            assert!(c.is_monotonic(&rd));
            assert_eq!(c.len(), 2);
        }
        // all 9 forward dependence edges are covered
        let edges: usize = chains.iter().map(|c| c.len() - 1).sum();
        assert_eq!(edges, rd.len());
    }

    #[test]
    fn example1_intermediate_chains() {
        let p = Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        // Use a larger box so that chains of length > 1 exist in P2:
        // (4, j) -> (10, j+6) -> (28, j+24) needs N1 >= 28.
        let (phi, rel) = analysis.bind_params(&[30, 40]);
        let phi_d = DenseSet::from_union(&phi);
        let rd = DenseRelation::from_relation(&rel);
        let part = DenseThreeSet::compute(&phi_d, &rd);
        let chains = chains_in_intermediate(&part, &rd);
        assert!(!chains.is_empty());
        assert!(validate_chain_cover(&chains, &part.p2).is_empty());
        for c in &chains {
            assert!(c.is_monotonic(&rd));
        }
        // Every chain start is in W and directly depends on a P1 iteration.
        for chain in &chains {
            let start = &chain.iterations[0];
            assert!(part.w.contains(start));
            assert!(rd.predecessors(start).iter().any(|p| part.p1.contains(p)));
        }
    }

    #[test]
    fn uniform_chain_is_single_while_loop() {
        // a(I+1) = a(I), N = 7: P2 = {2..6}, a single chain 2 -> 3 -> ... -> 6.
        let p = Program::new(
            "chain",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") + c(1)]),
                        ArrayRef::read("a", vec![v("I")]),
                    ],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        let (phi, rel) = analysis.bind_params(&[7]);
        let phi_d = DenseSet::from_union(&phi);
        let rd = DenseRelation::from_relation(&rel);
        let part = DenseThreeSet::compute(&phi_d, &rd);
        let chains = chains_in_intermediate(&part, &rd);
        assert_eq!(chains.len(), 1);
        assert_eq!(
            chains[0].iterations,
            vec![vec![2], vec![3], vec![4], vec![5], vec![6]]
        );
        assert_eq!(longest_chain(&chains), 5);
    }

    #[test]
    fn empty_relation_has_no_chains() {
        let rd = DenseRelation::new(1, 1);
        assert!(monotonic_chains(&rd).is_empty());
        assert_eq!(longest_chain(&[]), 0);
    }
}
