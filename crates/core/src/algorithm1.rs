//! Algorithm 1: the recurrence partitioning scheme.
//!
//! Given a dependence analysis, the driver selects between the two branches
//! of the paper's Algorithm 1:
//!
//! * **then-branch** — a single pair of coupled references with full-rank
//!   coefficient matrices: three-set partitioning plus WHILE recurrence
//!   chains in the intermediate set (works even with symbolic loop bounds);
//! * **else-branch** — multiple coupled subscripts but compile-time-known
//!   bounds: successive dataflow partitioning into fully parallel stages.
//!
//! The symbolic plan captures what the compiler can emit without knowing the
//! loop bounds; the concrete partition additionally enumerates the stages /
//! chains once parameters are bound, which is what the runtime executes and
//! what the benchmarks measure.

use crate::chains::{chains_in_intermediate, longest_chain, Chain};
use crate::dataflow::{dataflow_partition, DataflowPartition};
use crate::recurrence::Recurrence;
use crate::three_set::{DenseThreeSet, ThreeSetPartition};
use rcp_depend::{CoupledPairCheck, DependenceAnalysis};
use rcp_presburger::{DenseRelation, DenseSet, UnionSet};
use std::fmt;

/// The branch of Algorithm 1 chosen for a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Single coupled pair, full-rank matrices: three sets + WHILE chains.
    RecurrenceChains,
    /// Multiple coupled pairs with known bounds: successive dataflow
    /// partitioning.
    Dataflow,
}

/// Why Algorithm 1 cannot take its recurrence-chain then-branch for a
/// program — the typed replacement for the reason-less `None` that
/// [`symbolic_plan`] used to return.  Consumers (the `rcp partition`
/// report, the session pipeline) surface this instead of silently
/// falling back to dataflow partitioning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanUnavailable {
    /// The analysis ran at statement level (imperfect nest or `--stmt`):
    /// the coupled-pair recurrence is a loop-level construction.
    StatementLevel,
    /// The analysis ran over the aggregated loop-group view of an
    /// imperfect nest, where Lemma 1's recurrence is not defined; the
    /// partitioner attempts validated component chains instead.
    AggregatedLoopLevel,
    /// No statement reads and writes the same array, so there is no
    /// coupled pair; the dependence-free iterations form DOALL stages.
    NoCoupledPair,
    /// The nest has several coupled reference pairs, so no single
    /// recurrence `i = j·T + u` covers all dependences (Algorithm 1's
    /// else-branch condition).
    MultipleCoupledPairs {
        /// Number of same-array write/read pairs found.
        count: usize,
    },
    /// The single pair's access matrices are not square (array rank ≠
    /// nest depth), so no recurrence matrix exists.
    NonSquareAccess {
        /// The array with the non-square access.
        array: String,
    },
    /// The single pair's access matrices are rank deficient, violating
    /// Lemma 1's full-rank precondition for `T = B·A⁻¹`.
    RankDeficientAccess {
        /// The array with the rank-deficient access.
        array: String,
    },
    /// The dependence relation carries pieces from a reference pair other
    /// than the coupled pair (e.g. a second array coupling the
    /// statements), so the recurrence maps do not characterise the whole
    /// relation and a symbolic instantiation could miss dependences.  The
    /// then-branch may still apply per binding through the validated
    /// concrete path.
    ForeignDependenceSource {
        /// The array of the first non-coupled pair that contributed
        /// relation pieces.
        array: String,
    },
    /// At least one symbolic partition set (`P1`, `P2`, `P3`, `W`, or `Φ`)
    /// is flagged as a Fourier–Motzkin over-approximation: enumerating it
    /// could yield extra points, so only the per-binding concrete path is
    /// exact.
    ApproximatePartitionSets,
    /// The program's subscripts mention loop parameters, so no binding-free
    /// symbolic analysis (and hence no symbolic plan) exists; analysis is
    /// deferred until parameters are bound.
    ParametricSubscripts,
    /// Instantiating the symbolic plan at a concrete binding produced a
    /// partition that fails validation (e.g. the WHILE chains do not cover
    /// the intermediate set at this binding); the caller must fall back to
    /// the per-binding concrete path.
    InstantiationInvalid {
        /// The first violated invariant.
        detail: String,
    },
}

impl fmt::Display for PlanUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanUnavailable::StatementLevel => write!(
                f,
                "statement-level analysis: the coupled-pair recurrence is only \
                 defined at loop level"
            ),
            PlanUnavailable::AggregatedLoopLevel => write!(
                f,
                "aggregated loop-level view of an imperfect nest: Lemma 1's \
                 recurrence requires a perfect nest (the partition uses \
                 validated component chains when the structure admits them)"
            ),
            PlanUnavailable::NoCoupledPair => write!(
                f,
                "no coupled reference pair: no statement both reads and writes \
                 the same array"
            ),
            PlanUnavailable::MultipleCoupledPairs { count } => write!(
                f,
                "{count} coupled reference pairs: the recurrence i = j*T + u \
                 requires exactly one"
            ),
            PlanUnavailable::NonSquareAccess { array } => write!(
                f,
                "access matrices of `{array}` are not square (array rank != \
                 nest depth), so no recurrence matrix T exists"
            ),
            PlanUnavailable::RankDeficientAccess { array } => write!(
                f,
                "access matrices of `{array}` are rank deficient, violating \
                 Lemma 1's full-rank precondition"
            ),
            PlanUnavailable::ForeignDependenceSource { array } => write!(
                f,
                "dependences through `{array}` do not come from the coupled \
                 pair, so the recurrence does not characterise the whole \
                 relation (per-binding concrete partitioning still applies)"
            ),
            PlanUnavailable::ApproximatePartitionSets => write!(
                f,
                "a symbolic partition set is a Fourier-Motzkin \
                 over-approximation, so only per-binding concrete \
                 partitioning is exact"
            ),
            PlanUnavailable::ParametricSubscripts => write!(
                f,
                "subscripts mention loop parameters, so analysis (and the \
                 symbolic plan) is deferred until parameters are bound"
            ),
            PlanUnavailable::InstantiationInvalid { detail } => write!(
                f,
                "instantiated plan failed validation at this binding: {detail}"
            ),
        }
    }
}

impl std::error::Error for PlanUnavailable {}

/// The compile-time (symbolic) plan of the then-branch: the primary
/// parametric artifact of the pipeline.  Computed once per program, it
/// materialises any parameter binding through [`SymbolicPlan::instantiate`]
/// in O(pieces) — no relation re-binding, no pair re-enumeration, no
/// Algorithm-1 re-run.
#[derive(Clone, Debug)]
pub struct SymbolicPlan {
    /// The symbolic three-set partition (`P1`, `P2`, `P3`, `W`).
    pub partition: ThreeSetPartition,
    /// The recurrence `T`, `u` driving the WHILE chains.
    pub recurrence: Recurrence,
    /// The symbolic iteration space `Φ`, kept so instantiation can
    /// enumerate the space and filter recurrence images without the
    /// originating analysis.
    phi: UnionSet,
    /// Why [`SymbolicPlan::instantiate`] must refuse and the caller fall
    /// back to the validated per-binding concrete path; `None` when the
    /// plan is symbolically instantiable.
    instantiability: Option<PlanUnavailable>,
}

impl SymbolicPlan {
    /// `None` when [`Self::instantiate`] can materialise any binding
    /// exactly; otherwise the precise reason instantiation must defer to
    /// the per-binding concrete path.
    pub fn instantiability(&self) -> Option<&PlanUnavailable> {
        self.instantiability.as_ref()
    }

    /// True when [`Self::instantiate`] can materialise bindings.
    pub fn is_instantiable(&self) -> bool {
        self.instantiability.is_none()
    }

    /// Binds the plan at a concrete parameter binding in O(pieces): every
    /// partition set and `Φ` get their parameters substituted piece by
    /// piece — no relation re-binding, no pair re-enumeration, no
    /// Algorithm-1 re-run, and crucially no point enumeration at all.  The
    /// returned [`PlanInstance`] answers membership queries
    /// ([`PlanInstance::phase_of`]) in O(pieces) and materialises the full
    /// dense partition on demand ([`PlanInstance::materialise`]).
    ///
    /// # Errors
    /// The stored [`Self::instantiability`] reason when the plan is gated
    /// and the caller must take the per-binding concrete path.
    pub fn instance(&self, values: &[i64]) -> Result<PlanInstance, PlanUnavailable> {
        if let Some(reason) = &self.instantiability {
            return Err(reason.clone());
        }
        Ok(PlanInstance {
            partition: self.partition.bind_params(values),
            phi: self.phi.bind_params(values),
            recurrence: self.recurrence.clone(),
        })
    }

    /// Materialises the plan at a concrete parameter binding: the
    /// O(pieces) [`Self::instance`] bind followed by
    /// [`PlanInstance::materialise`], which enumerates the partition sets
    /// (output-sized work) and walks the WHILE chains directly along the
    /// recurrence maps — the dependence relation is never re-bound and the
    /// pair space never re-enumerated.
    ///
    /// The result is bit-identical to
    /// [`concrete_partition_from_dense`] at the same binding whenever this
    /// returns `Ok` (the equivalence suite in `tests/` proves it point for
    /// point): under the single-coupled-pair provenance gate the dense
    /// relation's successor structure *is* the recurrence's
    /// `{apply, apply_inverse}` image filtered to `Φ` and forward lex
    /// order, so the symbolic walk reproduces the legacy chains exactly.
    ///
    /// # Errors
    /// The stored [`Self::instantiability`] reason when the plan is gated,
    /// or [`PlanUnavailable::InstantiationInvalid`] when the instantiated
    /// partition fails validation at this particular binding (the caller
    /// falls back to the concrete path, which itself falls back to
    /// dataflow stages — exactly what the legacy pipeline does).
    pub fn instantiate(&self, values: &[i64]) -> Result<ConcretePartition, PlanUnavailable> {
        self.instance(values)?.materialise()
    }
}

/// Which of the paper's three partition sets an iteration falls in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionPhase {
    /// `P1`: independent and initial iterations (first parallel phase).
    Initial,
    /// `P2`: intermediate iterations, executed along their WHILE chain.
    Intermediate,
    /// `P3`: final iterations (last parallel phase).
    Final,
}

/// A symbolic plan bound at one parameter binding — the O(pieces)
/// instantiation artifact.  Holds the bound (but not enumerated) partition
/// sets, the bound iteration space, and the recurrence, so per-binding
/// queries cost piece evaluations rather than point enumerations; the
/// dense [`ConcretePartition`] is pay-as-you-go via [`Self::materialise`].
#[derive(Clone, Debug)]
pub struct PlanInstance {
    /// The bound three-set partition (piece descriptions, not points).
    pub partition: ThreeSetPartition,
    /// The bound iteration space `Φ`.
    phi: UnionSet,
    /// The recurrence `T`, `u` (binding-independent).
    recurrence: Recurrence,
}

impl PlanInstance {
    /// Classifies one iteration into its partition phase in O(pieces):
    /// piece-membership tests against the bound sets, no enumeration.
    /// Returns `None` for points outside `Φ`.
    pub fn phase_of(&self, x: &[i64]) -> Option<PartitionPhase> {
        if self.partition.p1.contains(x, &[]) {
            Some(PartitionPhase::Initial)
        } else if self.partition.p2.contains(x, &[]) {
            Some(PartitionPhase::Intermediate)
        } else if self.partition.p3.contains(x, &[]) {
            Some(PartitionPhase::Final)
        } else {
            None
        }
    }

    /// Enumerates the bound partition sets and walks the WHILE chains
    /// along the recurrence maps, producing the dense
    /// [`ConcretePartition`] — output-sized work on top of the O(pieces)
    /// bind.
    ///
    /// # Errors
    /// [`PlanUnavailable::InstantiationInvalid`] when the chains fail
    /// validation at this binding.
    pub fn materialise(&self) -> Result<ConcretePartition, PlanUnavailable> {
        let dense = self.partition.to_dense();

        // The WHILE chain walk of `chains_in_intermediate`, with the dense
        // relation's successor lookup replaced by the recurrence maps: the
        // successors of `x` are `{apply(x), apply_inverse(x)}` — the
        // iteration whose write `x` reads and the iteration that reads
        // `x`'s write — filtered to integral images inside `Φ` that are
        // lexicographically forward.  Same guard stage and failpoint site
        // as the legacy walk, so budgets and chaos campaigns see one
        // partitioning pipeline.
        rcp_guard::tick(rcp_guard::Stage::ChainEnumeration, dense.w.len() as u64 + 1);
        rcp_guard::fail_point("core::chains", rcp_guard::Stage::ChainEnumeration);
        let successors = |x: &[i64]| -> Vec<rcp_intlin::IVec> {
            let mut out: Vec<rcp_intlin::IVec> = Vec::with_capacity(2);
            for cand in [self.recurrence.apply(x), self.recurrence.apply_inverse(x)]
                .into_iter()
                .flatten()
            {
                if cand.as_slice() > x && self.phi.contains(&cand, &[]) && !out.contains(&cand) {
                    out.push(cand);
                }
            }
            out
        };
        let mut chains = Vec::new();
        for start in dense.w.iter() {
            let mut chain = Vec::new();
            let mut current = start.clone();
            loop {
                if !dense.p2.contains(&current) {
                    break;
                }
                chain.push(current.clone());
                let succs = successors(&current);
                match succs.first() {
                    Some(next) if succs.len() == 1 => current = next.clone(),
                    _ => break,
                }
            }
            if !chain.is_empty() {
                chains.push(Chain { iterations: chain });
            }
        }

        // Validation without the dense relation: the chain invariants the
        // concrete path checks, with dependence edges read off the
        // recurrence (exact under the provenance gate).  Failing either
        // here means the legacy path would have rejected the chain
        // candidate too.  Set disjointness, coverage of `Φ`, and `W ⊆ P2`
        // are *not* re-checked densely: the exactness gate
        // (`ApproximatePartitionSets`) guarantees the bound pieces are the
        // true projections, and the symbolic construction (`P1 = Φ \ ran`,
        // `P2 = ran ∩ dom`, `P3 = ran \ dom`, `W ⊆ P2`) makes those
        // invariants hold by algebra, not by enumeration.
        if let Some(detail) = self.validate_instance(&dense, &chains, &successors) {
            return Err(PlanUnavailable::InstantiationInvalid { detail });
        }
        Ok(ConcretePartition::RecurrenceChains {
            p1: dense.p1.clone(),
            chains,
            p3: dense.p3.clone(),
            three_set: dense,
        })
    }

    /// The materialise-time validation behind
    /// [`SymbolicPlan::instantiate`]: the chains exactly covering `P2`,
    /// and no recurrence edge crossing two chains.  Returns the first
    /// violated invariant.
    fn validate_instance(
        &self,
        dense: &DenseThreeSet,
        chains: &[Chain],
        successors: &dyn Fn(&[i64]) -> Vec<rcp_intlin::IVec>,
    ) -> Option<String> {
        if let Some(problem) = crate::chains::validate_chain_cover(chains, &dense.p2).pop() {
            return Some(problem);
        }
        let mut owner: std::collections::HashMap<&rcp_intlin::IVec, usize> =
            std::collections::HashMap::new();
        for (k, c) in chains.iter().enumerate() {
            for it in &c.iterations {
                owner.insert(it, k);
            }
        }
        for (k, c) in chains.iter().enumerate() {
            for it in &c.iterations {
                for succ in successors(it) {
                    if let Some(&other) = owner.get(&succ) {
                        if other != k {
                            return Some(format!(
                                "dependence {:?} -> {:?} crosses chains {k} and {other}",
                                it, succ
                            ));
                        }
                    }
                }
            }
        }
        None
    }
}

/// A concrete (parameter-bound) partition of the iteration space, ready for
/// scheduling and execution.
#[derive(Clone, Debug)]
pub enum ConcretePartition {
    /// Result of the then-branch.
    RecurrenceChains {
        /// Fully parallel first set (independent + initial iterations).
        p1: DenseSet,
        /// The WHILE chains covering the intermediate set; each chain is
        /// sequential, different chains are independent.
        chains: Vec<Chain>,
        /// Fully parallel final set.
        p3: DenseSet,
        /// The dense three-set partition backing the plan.
        three_set: DenseThreeSet,
    },
    /// Result of the else-branch.
    Dataflow {
        /// Fully parallel stages in execution order.
        stages: DataflowPartition,
    },
}

/// Summary statistics of a concrete partition, used by the speedup model
/// and the experiment tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanStats {
    /// Number of barrier-separated phases.
    pub n_phases: usize,
    /// Length of the critical path in iterations (the sequential lower
    /// bound on parallel execution time, in iteration units).
    pub critical_path: usize,
    /// The widest phase (upper bound on exploitable parallelism).
    pub max_width: usize,
    /// Total number of iterations scheduled.
    pub total_iterations: usize,
}

impl ConcretePartition {
    /// Statistics of the plan.
    pub fn stats(&self) -> PlanStats {
        match self {
            ConcretePartition::RecurrenceChains { p1, chains, p3, .. } => {
                let longest = longest_chain(chains);
                let chain_iters: usize = chains.iter().map(|c| c.len()).sum();
                let mut n_phases = 0;
                let mut critical = 0;
                if !p1.is_empty() {
                    n_phases += 1;
                    critical += 1;
                }
                if !chains.is_empty() {
                    n_phases += 1;
                    critical += longest;
                }
                if !p3.is_empty() {
                    n_phases += 1;
                    critical += 1;
                }
                PlanStats {
                    n_phases,
                    critical_path: critical,
                    max_width: p1.len().max(p3.len()).max(chains.len()),
                    total_iterations: p1.len() + chain_iters + p3.len(),
                }
            }
            ConcretePartition::Dataflow { stages } => PlanStats {
                n_phases: stages.n_stages(),
                critical_path: stages.n_stages(),
                max_width: stages.max_stage_size(),
                total_iterations: stages.total_iterations(),
            },
        }
    }

    /// The strategy that produced this partition.
    pub fn strategy(&self) -> Strategy {
        match self {
            ConcretePartition::RecurrenceChains { .. } => Strategy::RecurrenceChains,
            ConcretePartition::Dataflow { .. } => Strategy::Dataflow,
        }
    }

    /// Validates that the partition is a correct parallel execution order
    /// for the given concrete iteration space and dependence relation:
    /// every iteration is scheduled exactly once and every dependence is
    /// respected by the phase/chain ordering.  Returns violated invariants.
    pub fn validate(&self, phi: &DenseSet, rd: &DenseRelation) -> Vec<String> {
        match self {
            ConcretePartition::RecurrenceChains {
                p1,
                chains,
                p3,
                three_set,
            } => {
                let mut problems = three_set.validate(phi, rd);
                problems.extend(crate::chains::validate_chain_cover(chains, &three_set.p2));
                for c in chains {
                    if !c.is_monotonic(rd) {
                        problems.push(format!("chain {:?} is not monotonic", c.iterations));
                    }
                }
                // Dependences between different chains are not allowed
                // (Lemma 1 guarantees disjoint chains).
                let mut owner: std::collections::HashMap<&rcp_intlin::IVec, usize> =
                    std::collections::HashMap::new();
                for (k, c) in chains.iter().enumerate() {
                    for it in &c.iterations {
                        owner.insert(it, k);
                    }
                }
                for (src, dst) in rd.iter() {
                    if let (Some(a), Some(b)) = (owner.get(src), owner.get(dst)) {
                        if a != b {
                            problems.push(format!(
                                "dependence {:?} -> {:?} crosses chains {a} and {b}",
                                src, dst
                            ));
                        }
                    }
                }
                if p1 != &three_set.p1 || p3 != &three_set.p3 {
                    problems.push("plan sets diverge from the three-set partition".to_string());
                }
                problems
            }
            ConcretePartition::Dataflow { stages } => stages.validate(phi, rd),
        }
    }
}

/// Diagnoses whether Algorithm 1's then-branch applies: `None` when the
/// recurrence-chain plan is available, otherwise the precise reason it is
/// not.  The single source of truth for the branch condition, shared by
/// [`symbolic_plan`], [`concrete_partition_from_dense`] and every consumer
/// that reports the chosen strategy (e.g. `rcp analyze`).
pub fn plan_unavailability(analysis: &DependenceAnalysis) -> Option<PlanUnavailable> {
    match analysis.coupled_pair_check() {
        CoupledPairCheck::Single(pair) => match Recurrence::from_pair(&pair) {
            Some(_) => None,
            // Unreachable for square full-rank pairs, but kept total.
            None => Some(PlanUnavailable::RankDeficientAccess {
                array: pair.write.array.clone(),
            }),
        },
        CoupledPairCheck::StatementLevel => Some(PlanUnavailable::StatementLevel),
        CoupledPairCheck::AggregatedLoopLevel => Some(PlanUnavailable::AggregatedLoopLevel),
        CoupledPairCheck::NoPair => Some(PlanUnavailable::NoCoupledPair),
        CoupledPairCheck::MultiplePairs { count } => {
            Some(PlanUnavailable::MultipleCoupledPairs { count })
        }
        CoupledPairCheck::NonSquare { array } => Some(PlanUnavailable::NonSquareAccess { array }),
        CoupledPairCheck::RankDeficient { array } => {
            Some(PlanUnavailable::RankDeficientAccess { array })
        }
    }
}

/// Builds the symbolic (compile-time) plan when the then-branch of
/// Algorithm 1 applies, i.e. the program has a single coupled reference
/// pair with full-rank matrices.  On failure the error says exactly which
/// precondition broke, so callers can report *why* the program fell back
/// to dataflow partitioning.
// Panic-hygiene allow: both `expect`s restate what `plan_unavailability`
// just verified — the pair and recurrence exist when it returns `None`.
#[allow(clippy::expect_used)]
pub fn symbolic_plan(analysis: &DependenceAnalysis) -> Result<SymbolicPlan, PlanUnavailable> {
    if let Some(reason) = plan_unavailability(analysis) {
        return Err(reason);
    }
    let pair = analysis
        .single_coupled_pair()
        .expect("plan_unavailability returned None, so the pair exists");
    let recurrence = Recurrence::from_pair(&pair)
        .expect("plan_unavailability returned None, so the recurrence exists");
    let partition = ThreeSetPartition::compute(&analysis.phi, &analysis.relation);
    // Instantiability gates: the symbolic walk in `instantiate` is only
    // bit-identical to the dense pipeline when (a) every relation piece
    // comes from the coupled pair — otherwise the recurrence maps miss
    // dependences (e.g. a second array coupling the statements) — and
    // (b) none of the symbolic sets is a Fourier–Motzkin
    // over-approximation, since enumerating an over-approximate set can
    // yield points the exact dense path never sees.
    let instantiability = if let Some(foreign) = analysis.foreign_piece_source() {
        Some(PlanUnavailable::ForeignDependenceSource {
            array: foreign.array.clone(),
        })
    } else if analysis.phi.is_approximate()
        || partition.p1.is_approximate()
        || partition.p2.is_approximate()
        || partition.p3.is_approximate()
        || partition.w.is_approximate()
    {
        Some(PlanUnavailable::ApproximatePartitionSets)
    } else {
        None
    };
    Ok(SymbolicPlan {
        partition,
        recurrence,
        phi: analysis.phi.clone(),
        instantiability,
    })
}

/// True when Algorithm 1 takes its then-branch for this analysis: a
/// single coupled reference pair with full-rank matrices whose recurrence
/// `i = j·T + u` exists.
pub fn uses_recurrence_chains(analysis: &DependenceAnalysis) -> bool {
    plan_unavailability(analysis).is_none()
}

/// Runs Algorithm 1 for concrete parameter values, choosing the
/// recurrence-chain branch when possible and falling back to dataflow
/// partitioning otherwise.
pub fn concrete_partition(analysis: &DependenceAnalysis, params: &[i64]) -> ConcretePartition {
    let (phi, rel) = analysis.bind_params(params);
    let phi_d = DenseSet::from_union(&phi);
    let rd = DenseRelation::from_relation(&rel);
    concrete_partition_from_dense(analysis, &phi_d, &rd)
}

/// Same as [`concrete_partition`] but starting from already-enumerated
/// sets (used by the benchmarks to avoid re-enumerating large spaces).
pub fn concrete_partition_from_dense(
    analysis: &DependenceAnalysis,
    phi: &DenseSet,
    rd: &DenseRelation,
) -> ConcretePartition {
    if uses_recurrence_chains(analysis) {
        let three_set = DenseThreeSet::compute(phi, rd);
        let chains = chains_in_intermediate(&three_set, rd);
        let candidate = ConcretePartition::RecurrenceChains {
            p1: three_set.p1.clone(),
            chains,
            p3: three_set.p3.clone(),
            three_set,
        };
        // The coupled pair's recurrence is the *syntactic* then-branch
        // condition; when the program carries dependences the recurrence
        // does not generate (a second array coupling the statements), the
        // chain partition can miss intermediate iterations.  Keep it only
        // when it validates against the full dependence relation, else
        // take the else-branch exactly as for multiple coupled pairs.
        if candidate.validate(phi, rd).is_empty() {
            candidate
        } else {
            ConcretePartition::Dataflow {
                stages: dataflow_partition(phi, rd),
            }
        }
    } else if analysis.is_aggregated() {
        // Aggregated loop-level views of imperfect nests have no symbolic
        // recurrence `i = j·T + u`, but the dependence structure often
        // still admits the paper's chain-shaped partition (three sets +
        // disjoint monotonic chains).  Attempt it and keep it only when
        // it validates; otherwise fall back to dataflow stages, exactly
        // like Algorithm 1's else-branch.
        try_chain_partition(phi, rd).unwrap_or_else(|| ConcretePartition::Dataflow {
            stages: dataflow_partition(phi, rd),
        })
    } else {
        ConcretePartition::Dataflow {
            stages: dataflow_partition(phi, rd),
        }
    }
}

/// Attempts the chain-shaped partition of a dense dependence structure
/// without the single-coupled-pair precondition: three sets plus the
/// connected-component chains covering the intermediate set
/// ([`crate::chains::component_chains`] — tolerant of the transitive
/// edges aggregated relations carry), kept only when fully valid
/// (disjoint monotonic chains, every dependence respected).  Used by the
/// aggregated loop-level views, where Lemma 1's recurrence does not exist
/// but the chain decomposition frequently does.
pub fn try_chain_partition(phi: &DenseSet, rd: &DenseRelation) -> Option<ConcretePartition> {
    let three_set = DenseThreeSet::compute(phi, rd);
    let chains = crate::chains::component_chains(&three_set.p2, rd);
    let candidate = ConcretePartition::RecurrenceChains {
        p1: three_set.p1.clone(),
        chains,
        p3: three_set.p3.clone(),
        three_set,
    };
    if candidate.validate(phi, rd).is_empty() {
        Some(candidate)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::{ArrayRef, Program};

    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    /// Example 2 of the paper (Ju & Chaudhary's loop).
    fn example2() -> Program {
        Program::new(
            "example2",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![loop_(
                    "J",
                    c(1),
                    v("N"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write("a", vec![v("I") * 2 + c(3), v("J") + c(1)]),
                            ArrayRef::read(
                                "a",
                                vec![v("I") + v("J") * 2 + c(1), v("I") + v("J") + c(3)],
                            ),
                        ],
                    )],
                )],
            )],
        )
    }

    #[test]
    fn example1_uses_recurrence_chains() {
        let analysis = rcp_depend::DependenceAnalysis::loop_level(&example1());
        assert!(symbolic_plan(&analysis).is_ok());
        let part = concrete_partition(&analysis, &[10, 10]);
        assert_eq!(part.strategy(), Strategy::RecurrenceChains);
        let (phi, rel) = analysis.bind_params(&[10, 10]);
        let phi_d = DenseSet::from_union(&phi);
        let rd = DenseRelation::from_relation(&rel);
        assert!(part.validate(&phi_d, &rd).is_empty());
        let stats = part.stats();
        assert_eq!(stats.total_iterations, 100);
        assert!(stats.n_phases <= 3);
        // Theorem 1: the critical path never exceeds the bound.
        let plan = symbolic_plan(&analysis).unwrap();
        let l = (10.0f64 * 10.0 + 10.0 * 10.0).sqrt();
        if let ConcretePartition::RecurrenceChains { chains, .. } = &part {
            let bound = plan.recurrence.critical_path_bound(l).unwrap();
            assert!(longest_chain(chains) <= bound);
        }
    }

    #[test]
    fn example2_intermediate_set_is_single_iteration_at_n12() {
        // Paper, Example 2: "For this N=12 case, there is only a single
        // iteration in the intermediate set, particularly iteration (2, 6)."
        let analysis = rcp_depend::DependenceAnalysis::loop_level(&example2());
        let pair = analysis
            .single_coupled_pair()
            .expect("example 2 has one coupled pair");
        assert_eq!(pair.write.matrix.det(), 2);
        assert_eq!(pair.read.matrix.det().abs(), 1);
        let part = concrete_partition(&analysis, &[12]);
        assert_eq!(part.strategy(), Strategy::RecurrenceChains);
        match &part {
            ConcretePartition::RecurrenceChains {
                three_set, chains, ..
            } => {
                assert_eq!(three_set.p2.to_vec(), vec![vec![2, 6]]);
                assert_eq!(chains.len(), 1);
                assert_eq!(chains[0].iterations, vec![vec![2, 6]]);
                // REC obtains 3 fully parallel partitions in sequence.
                assert_eq!(part.stats().n_phases, 3);
            }
            _ => panic!("expected recurrence chains"),
        }
        let (phi, rel) = analysis.bind_params(&[12]);
        assert!(part
            .validate(
                &DenseSet::from_union(&phi),
                &DenseRelation::from_relation(&rel)
            )
            .is_empty());
    }

    #[test]
    fn example2_theorem1_bound_scaling() {
        // Paper: with a = |det T| = 2 the longest critical path has at most
        // ceil(log2(n)) + 0.5 iterations; check the chain lengths stay under
        // the Theorem-1 bound for a couple of sizes.
        let analysis = rcp_depend::DependenceAnalysis::loop_level(&example2());
        let plan = symbolic_plan(&analysis).unwrap();
        assert_eq!(plan.recurrence.alpha(), rcp_intlin::Rational::from_int(2));
        for n in [8i64, 12, 20, 30] {
            let part = concrete_partition(&analysis, &[n]);
            if let ConcretePartition::RecurrenceChains { chains, .. } = &part {
                let l = ((2 * n * n) as f64).sqrt();
                let bound = plan.recurrence.critical_path_bound(l).unwrap();
                assert!(
                    longest_chain(chains) <= bound,
                    "chain length {} exceeds Theorem-1 bound {} at N={}",
                    longest_chain(chains),
                    bound,
                    n
                );
            } else {
                panic!("expected recurrence chains");
            }
        }
    }

    #[test]
    fn multi_pair_program_falls_back_to_dataflow() {
        // Two coupled reference pairs: the then-branch no longer applies.
        let p = Program::new(
            "multi",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![loop_(
                    "J",
                    c(1),
                    v("N"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write("a", vec![v("I") + v("J"), v("J")]),
                            ArrayRef::read("a", vec![v("I"), v("J")]),
                            ArrayRef::read("a", vec![v("J"), v("I")]),
                        ],
                    )],
                )],
            )],
        );
        let analysis = rcp_depend::DependenceAnalysis::loop_level(&p);
        assert!(analysis.single_coupled_pair().is_none());
        assert_eq!(
            symbolic_plan(&analysis).unwrap_err(),
            PlanUnavailable::MultipleCoupledPairs { count: 2 },
            "the fallback must say why the then-branch is unavailable"
        );
        let part = concrete_partition(&analysis, &[6]);
        assert_eq!(part.strategy(), Strategy::Dataflow);
        let (phi, rel) = analysis.bind_params(&[6]);
        assert!(part
            .validate(
                &DenseSet::from_union(&phi),
                &DenseRelation::from_relation(&rel)
            )
            .is_empty());
        assert_eq!(part.stats().total_iterations, 36);
    }

    #[test]
    fn instantiate_equals_concrete_partition_on_the_examples() {
        for (program, bindings) in [
            (example1(), vec![vec![10i64, 10], vec![12, 8], vec![6, 14]]),
            (example2(), vec![vec![8], vec![12], vec![20], vec![30]]),
        ] {
            let analysis = rcp_depend::DependenceAnalysis::loop_level(&program);
            let plan = symbolic_plan(&analysis).unwrap();
            assert!(
                plan.is_instantiable(),
                "{}: {:?}",
                program.name,
                plan.instantiability()
            );
            for values in &bindings {
                let instantiated = plan.instantiate(values).unwrap();
                let legacy = concrete_partition(&analysis, values);
                assert_eq!(
                    format!("{instantiated:?}"),
                    format!("{legacy:?}"),
                    "{} at {values:?}: instantiate diverges from the concrete path",
                    program.name
                );
            }
        }
    }

    #[test]
    fn instance_phase_queries_match_the_dense_partition() {
        let analysis = rcp_depend::DependenceAnalysis::loop_level(&example1());
        let plan = symbolic_plan(&analysis).unwrap();
        let instance = plan.instance(&[10, 10]).unwrap();
        let dense = match instance.materialise().unwrap() {
            ConcretePartition::RecurrenceChains { three_set, .. } => three_set,
            ConcretePartition::Dataflow { .. } => panic!("example 1 uses chains"),
        };
        for i in 0..=11i64 {
            for j in 0..=11i64 {
                let p = [i, j];
                let expected = if dense.p1.contains(&p) {
                    Some(PartitionPhase::Initial)
                } else if dense.p2.contains(&p) {
                    Some(PartitionPhase::Intermediate)
                } else if dense.p3.contains(&p) {
                    Some(PartitionPhase::Final)
                } else {
                    None
                };
                assert_eq!(
                    instance.phase_of(&p),
                    expected,
                    "phase of {p:?} diverges from the enumerated partition"
                );
            }
        }
    }

    #[test]
    fn foreign_dependences_gate_instantiation() {
        // Two statements coupled through a *second* array: the coupled
        // pair is unique (only `a` is both read and written by one
        // statement), but `b` carries dependences the recurrence knows
        // nothing about — instantiate must refuse rather than miscompile.
        let p = Program::new(
            "foreign",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") + c(1)]),
                        ArrayRef::read("a", vec![v("I")]),
                        ArrayRef::write("b", vec![v("I")]),
                        ArrayRef::read("b", vec![v("I") - c(1)]),
                    ],
                )],
            )],
        );
        let analysis = rcp_depend::DependenceAnalysis::loop_level(&p);
        match symbolic_plan(&analysis) {
            Ok(plan) => {
                assert!(
                    matches!(
                        plan.instantiability(),
                        Some(PlanUnavailable::ForeignDependenceSource { .. })
                    ),
                    "expected the foreign-pieces gate, got {:?}",
                    plan.instantiability()
                );
                assert!(plan.instantiate(&[10]).is_err());
            }
            // Several coupled pairs also (correctly) block the plan.
            Err(PlanUnavailable::MultipleCoupledPairs { .. }) => {}
            Err(other) => panic!("unexpected plan error: {other}"),
        }
    }

    #[test]
    fn independent_loop_is_one_parallel_phase() {
        let p = Program::new(
            "indep",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I")]),
                        ArrayRef::read("b", vec![v("I")]),
                    ],
                )],
            )],
        );
        let analysis = rcp_depend::DependenceAnalysis::loop_level(&p);
        let part = concrete_partition(&analysis, &[16]);
        let stats = part.stats();
        assert_eq!(stats.total_iterations, 16);
        assert_eq!(stats.critical_path, 1);
        assert_eq!(stats.max_width, 16);
    }
}
