//! The three-set partitioning of §3.1.
//!
//! From the iteration space `Φ` and the forward dependence relation `Rd`
//! the iteration space is split into three sequential partitions
//!
//! ```text
//! P1 = Φ \ ran Rd          independent and initial iterations (fully parallel)
//! P2 = ran Rd ∩ dom Rd     intermediate iterations
//! P3 = ran Rd \ dom Rd     final iterations (fully parallel)
//! ```
//!
//! executed in the order `P1 → P2 → P3` with barriers in between, plus the
//! WHILE start set `W = {j | (i → j) ∈ Rd, i ∈ P1, j ∈ P2}` from which the
//! monotonic chains of the intermediate set are launched.
//!
//! Both a symbolic version (unions of convex sets, usable with unknown loop
//! bounds) and a dense version (enumerated points, used for execution and
//! validation) are provided.

use rcp_presburger::{DenseRelation, DenseSet, Relation, UnionSet};

/// The symbolic three-set partition.
#[derive(Clone, Debug)]
pub struct ThreeSetPartition {
    /// `P1 = Φ \ ran Rd`: independent and initial iterations.
    pub p1: UnionSet,
    /// `P2 = ran Rd ∩ dom Rd`: intermediate iterations.
    pub p2: UnionSet,
    /// `P3 = ran Rd \ dom Rd`: final iterations.
    pub p3: UnionSet,
    /// `W`: the P2 iterations that directly depend on a P1 iteration — the
    /// start points of the WHILE chains.
    pub w: UnionSet,
}

impl ThreeSetPartition {
    /// Computes the partition from the iteration space and the forward
    /// dependence relation (eq. 5 of the paper).
    pub fn compute(phi: &UnionSet, rd: &Relation) -> ThreeSetPartition {
        let ran = rd.range();
        let dom = rd.domain();
        let p1 = phi.subtract(&ran);
        let p2 = ran.intersect(&dom).intersect(phi);
        let p3 = ran.subtract(&dom).intersect(phi);
        // W = {j | (i -> j) in Rd, i in P1, j in P2}
        let w = rd.restrict_domain(&p1).restrict_range(&p2).range();
        ThreeSetPartition { p1, p2, p3, w }
    }

    /// Binds symbolic parameters in every partition set.
    pub fn bind_params(&self, values: &[i64]) -> ThreeSetPartition {
        ThreeSetPartition {
            p1: self.p1.bind_params(values),
            p2: self.p2.bind_params(values),
            p3: self.p3.bind_params(values),
            w: self.w.bind_params(values),
        }
    }

    /// Converts to the dense representation (parameters must be bound).
    pub fn to_dense(&self) -> DenseThreeSet {
        DenseThreeSet {
            p1: DenseSet::from_union(&self.p1),
            p2: DenseSet::from_union(&self.p2),
            p3: DenseSet::from_union(&self.p3),
            w: DenseSet::from_union(&self.w),
        }
    }
}

/// The dense (enumerated) three-set partition.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseThreeSet {
    /// Independent and initial iterations.
    pub p1: DenseSet,
    /// Intermediate iterations.
    pub p2: DenseSet,
    /// Final iterations.
    pub p3: DenseSet,
    /// Chain start iterations inside `P2`.
    pub w: DenseSet,
}

impl DenseThreeSet {
    /// Computes the partition directly on dense sets.
    pub fn compute(phi: &DenseSet, rd: &DenseRelation) -> DenseThreeSet {
        let ran = rd.range();
        let dom = rd.domain();
        let p1 = phi.subtract(&ran);
        let p2 = ran.intersect(&dom).intersect(phi);
        let p3 = ran.subtract(&dom).intersect(phi);
        let mut w = DenseSet::new(phi.dim());
        for (src, dst) in rd.iter() {
            if p1.contains(src) && p2.contains(dst) {
                w.insert(dst.clone());
            }
        }
        DenseThreeSet { p1, p2, p3, w }
    }

    /// Checks the structural invariants of the partition against the
    /// original `Φ` and `Rd`; returns a list of violated invariants
    /// (empty when the partition is valid).
    ///
    /// Invariants:
    /// 1. `P1`, `P2`, `P3` are pairwise disjoint and their union is `Φ`
    ///    (restricted to points that appear in `Φ`).
    /// 2. No dependence goes backwards across the phase order
    ///    `P1 → P2 → P3`.
    /// 3. No dependence connects two `P1` iterations or two `P3`
    ///    iterations (the outer sets are fully parallel).
    /// 4. `W ⊆ P2`.
    pub fn validate(&self, phi: &DenseSet, rd: &DenseRelation) -> Vec<String> {
        let mut problems = Vec::new();
        if !self.p1.is_disjoint(&self.p2)
            || !self.p1.is_disjoint(&self.p3)
            || !self.p2.is_disjoint(&self.p3)
        {
            problems.push("partitions are not pairwise disjoint".to_string());
        }
        let union = self.p1.union(&self.p2).union(&self.p3);
        if &union != phi {
            problems.push(format!(
                "P1 ∪ P2 ∪ P3 has {} points, Φ has {}",
                union.len(),
                phi.len()
            ));
        }
        let phase = |p: &[i64]| -> i32 {
            if self.p1.contains(p) {
                1
            } else if self.p2.contains(p) {
                2
            } else if self.p3.contains(p) {
                3
            } else {
                0
            }
        };
        for (src, dst) in rd.iter() {
            let (a, b) = (phase(src), phase(dst));
            if a == 0 || b == 0 {
                continue; // end point outside phi (should not happen)
            }
            if a > b {
                problems.push(format!(
                    "dependence {:?} (P{a}) -> {:?} (P{b}) goes backwards",
                    src, dst
                ));
            }
            if a == b && (a == 1 || a == 3) {
                problems.push(format!(
                    "dependence {:?} -> {:?} inside fully parallel set P{a}",
                    src, dst
                ));
            }
        }
        if !self.w.is_subset(&self.p2) {
            problems.push("W is not a subset of P2".to_string());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_depend::DependenceAnalysis;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::{ArrayRef, Program};

    fn figure2() -> Program {
        Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        )
    }

    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    #[test]
    fn figure2_partition_matches_paper() {
        // "The first set is the union of the initial iterations
        //  {1,2,3,4,5,6} and the independent iterations
        //  {7,12,14,16,18,20}" — and every monotonic chain has only two
        // iterations, so the intermediate set is empty.
        let analysis = DependenceAnalysis::loop_level(&figure2());
        let part = ThreeSetPartition::compute(&analysis.phi, &analysis.relation);
        let dense = part.bind_params(&[]).to_dense();
        let p1: Vec<i64> = dense.p1.iter().map(|p| p[0]).collect();
        assert_eq!(p1, vec![1, 2, 3, 4, 5, 6, 7, 12, 14, 16, 18, 20]);
        assert!(
            dense.p2.is_empty(),
            "figure 2 has an empty intermediate set"
        );
        let p3: Vec<i64> = dense.p3.iter().map(|p| p[0]).collect();
        assert_eq!(p3, vec![8, 9, 10, 11, 13, 15, 17, 19]);
        assert!(dense.w.is_empty());
        // Cross-validate against the dense computation.
        let (phi, rel) = analysis.bind_params(&[]);
        let dense_direct = DenseThreeSet::compute(
            &DenseSet::from_union(&phi),
            &DenseRelation::from_relation(&rel),
        );
        assert_eq!(dense, dense_direct);
    }

    #[test]
    fn example1_partition_structure() {
        let analysis = DependenceAnalysis::loop_level(&example1());
        let part = ThreeSetPartition::compute(&analysis.phi, &analysis.relation);
        // Symbolic partition specialised to the figure-1 box (N1=N2=10).
        let dense = part.bind_params(&[10, 10]).to_dense();
        let (phi, rel) = analysis.bind_params(&[10, 10]);
        let phi_d = DenseSet::from_union(&phi);
        let rd_d = DenseRelation::from_relation(&rel);
        assert!(
            dense.validate(&phi_d, &rd_d).is_empty(),
            "invalid partition"
        );
        // Exactly the 100 iterations of the 10x10 space are covered.
        assert_eq!(dense.p1.len() + dense.p2.len() + dense.p3.len(), 100);
        // Figure 1 structure: sources at i1 in {2,3,4} (18 dependences), all
        // targets have i1 in {4, 7, 10}.  Iterations that are targets but
        // not sources are final; (4, j) for small j are both.
        assert!(dense.p3.contains(&[7, 5]));
        assert!(dense.p3.contains(&[10, 10]));
        assert!(dense.p1.contains(&[1, 1]));
        assert!(dense.p1.contains(&[2, 2]));
        // (4,4) is a target of (2,2) and a source of (10,10): intermediate.
        assert!(dense.p2.contains(&[4, 4]));
        // Chain starts: every P2 iteration whose predecessor is in P1.
        assert!(dense.w.contains(&[4, 4]));
        // Cross-validation symbolic vs dense.
        let direct = DenseThreeSet::compute(&phi_d, &rd_d);
        assert_eq!(dense, direct);
        // The symbolic sets must not be flagged approximate for this loop.
        assert!(!part.p1.is_approximate());
        assert!(!part.p2.is_approximate());
        assert!(!part.p3.is_approximate());
    }

    #[test]
    fn validation_catches_broken_partitions() {
        let analysis = DependenceAnalysis::loop_level(&figure2());
        let (phi, rel) = analysis.bind_params(&[]);
        let phi_d = DenseSet::from_union(&phi);
        let rd_d = DenseRelation::from_relation(&rel);
        let good = DenseThreeSet::compute(&phi_d, &rd_d);
        assert!(good.validate(&phi_d, &rd_d).is_empty());
        // Swap P1 and P3: dependences now go backwards.
        let bad = DenseThreeSet {
            p1: good.p3.clone(),
            p2: good.p2.clone(),
            p3: good.p1.clone(),
            w: good.w.clone(),
        };
        assert!(!bad.validate(&phi_d, &rd_d).is_empty());
        // Dropping P3 breaks coverage.
        let missing = DenseThreeSet {
            p1: good.p1.clone(),
            p2: good.p2.clone(),
            p3: DenseSet::new(1),
            w: good.w.clone(),
        };
        assert!(!missing.validate(&phi_d, &rd_d).is_empty());
    }

    #[test]
    fn uniform_loop_three_sets() {
        // a(I+1) = a(I), N = 6: a single chain 1 -> 2 -> ... -> 6.
        let p = Program::new(
            "chain",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") + c(1)]),
                        ArrayRef::read("a", vec![v("I")]),
                    ],
                )],
            )],
        );
        let analysis = DependenceAnalysis::loop_level(&p);
        let part = ThreeSetPartition::compute(&analysis.phi, &analysis.relation);
        let dense = part.bind_params(&[6]).to_dense();
        assert_eq!(dense.p1.to_vec(), vec![vec![1]]);
        assert_eq!(dense.p2.len(), 4); // 2..=5
        assert_eq!(dense.p3.to_vec(), vec![vec![6]]);
        assert_eq!(dense.w.to_vec(), vec![vec![2]]);
    }
}
