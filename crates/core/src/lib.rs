//! Recurrence-chain partitioning of loops with non-uniform dependences.
//!
//! This crate implements the primary contribution of
//! *"Non-Uniform Dependences Partitioned by Recurrence Chains"*
//! (Yu & D'Hollander, ICPP 2004):
//!
//! * [`three_set`] — the three-set partitioning `P1 → P2 → P3` of §3.1 with
//!   the WHILE start set `W`,
//! * [`recurrence`] — the recurrence `i = j·T + u` of §3.2 (Lemma 1) and the
//!   Theorem-1 critical-path bound,
//! * [`chains`] — monotonic dependence chains (Definition 1) and the WHILE
//!   chains covering the intermediate set,
//! * [`dataflow`] — the successive dataflow partitioning used when multiple
//!   coupled subscript pairs are present (Algorithm 1, else-branch),
//! * [`algorithm1`] — the driver that selects the branch and produces both
//!   the symbolic plan and the concrete, executable partition.
//!
//! # Quick start
//!
//! ```
//! use rcp_core::algorithm1::{concrete_partition, symbolic_plan, Strategy};
//! use rcp_depend::DependenceAnalysis;
//! use rcp_loopir::expr::{c, v};
//! use rcp_loopir::program::build::{loop_, stmt};
//! use rcp_loopir::{ArrayRef, Program};
//!
//! // The paper's running example (figure 1).
//! let program = Program::new(
//!     "example1",
//!     &["N1", "N2"],
//!     vec![loop_(
//!         "I1",
//!         c(1),
//!         v("N1"),
//!         vec![loop_(
//!             "I2",
//!             c(1),
//!             v("N2"),
//!             vec![stmt(
//!                 "S",
//!                 vec![
//!                     ArrayRef::write("a", vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)]),
//!                     ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
//!                 ],
//!             )],
//!         )],
//!     )],
//! );
//! let analysis = DependenceAnalysis::loop_level(&program);
//! // Compile-time plan (symbolic bounds N1, N2).
//! let plan = symbolic_plan(&analysis).expect("single coupled pair, full rank");
//! assert_eq!(plan.recurrence.alpha(), rcp_intlin::Rational::from_int(3));
//! // Concrete partition for N1 = N2 = 10.
//! let part = concrete_partition(&analysis, &[10, 10]);
//! assert_eq!(part.strategy(), Strategy::RecurrenceChains);
//! assert_eq!(part.stats().total_iterations, 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm1;
pub mod chains;
pub mod dataflow;
pub mod recurrence;
pub mod three_set;

pub use algorithm1::{
    concrete_partition, concrete_partition_from_dense, plan_unavailability, symbolic_plan,
    try_chain_partition, uses_recurrence_chains, ConcretePartition, PartitionPhase, PlanInstance,
    PlanStats, PlanUnavailable, Strategy, SymbolicPlan,
};
pub use chains::{
    chains_in_intermediate, component_chains, longest_chain, monotonic_chains, Chain,
};
pub use dataflow::{
    dataflow_levels_indexed, dataflow_partition, dataflow_partition_by_peeling,
    dataflow_stage_sizes, DataflowPartition,
};
pub use recurrence::Recurrence;
pub use three_set::{DenseThreeSet, ThreeSetPartition};
