//! Successive dataflow partitioning (Algorithm 1, else-branch).
//!
//! When the loop has multiple pairs of coupled subscripts but the loop
//! bounds are known at compile time, the paper repeatedly peels the set of
//! iterations without remaining predecessors:
//!
//! ```text
//! do while (Φ is not empty)
//!     P1 = Φ \ ran Rd ;  Φ = Φ \ P1 ;  Rd = Rd restricted to Φ
//!     emit DOALL(P1)
//! end do
//! ```
//!
//! Every peeled set is fully parallel, barriers separate consecutive sets,
//! and the number of peels is the length of the longest dependence path
//! plus one — 238 steps for the Cholesky kernel at the paper's parameters.
//!
//! The implementation below computes the same layering in one topological
//! pass (Kahn levels) over the dense dependence relation, which is
//! equivalent to the repeated peeling but runs in `O(V + E)`.

use rcp_intlin::IVec;
use rcp_presburger::{DenseRelation, DenseSet};
use std::collections::HashMap;

/// The result of dataflow partitioning: a sequence of fully parallel
/// stages executed in order with a barrier after each.
#[derive(Clone, Debug, PartialEq)]
pub struct DataflowPartition {
    /// The stages in execution order; each stage is a fully parallel set.
    pub stages: Vec<DenseSet>,
}

impl DataflowPartition {
    /// Number of partitioning steps (stages).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total number of iterations across all stages.
    pub fn total_iterations(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }

    /// The largest stage size (determines the parallelism available).
    pub fn max_stage_size(&self) -> usize {
        self.stages.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Checks the structural invariants: stages are disjoint, cover `Φ`, no
    /// dependence stays within a stage, and no dependence points backwards.
    pub fn validate(&self, phi: &DenseSet, rd: &DenseRelation) -> Vec<String> {
        let mut problems = Vec::new();
        let mut level: HashMap<IVec, usize> = HashMap::new();
        for (k, stage) in self.stages.iter().enumerate() {
            for p in stage.iter() {
                if level.insert(p.clone(), k).is_some() {
                    problems.push(format!("iteration {:?} appears in two stages", p));
                }
            }
        }
        if level.len() != phi.len() {
            problems.push(format!(
                "stages cover {} of {} iterations",
                level.len(),
                phi.len()
            ));
        }
        for (src, dst) in rd.iter() {
            let (Some(&a), Some(&b)) = (level.get(src), level.get(dst)) else {
                continue;
            };
            if a >= b {
                problems.push(format!(
                    "dependence {:?} (stage {a}) -> {:?} (stage {b}) not strictly forward",
                    src, dst
                ));
            }
        }
        problems
    }
}

/// Computes the dataflow partition of `phi` under the dependence relation
/// `rd` (restricted to `phi`).
// Panic-hygiene allow: `restrict_within(phi)` has just confined every edge
// endpoint to `phi`, so both `expect`ed map lookups are invariants.
#[allow(clippy::expect_used)]
pub fn dataflow_partition(phi: &DenseSet, rd: &DenseRelation) -> DataflowPartition {
    // level(x) = 1 + max over predecessors p in phi of level(p); iterations
    // without predecessors get level 0.  Computed with Kahn's algorithm.
    let rd = rd.restrict_within(phi);
    let mut indegree: HashMap<IVec, usize> = HashMap::new();
    for p in phi.iter() {
        indegree.insert(p.clone(), 0);
    }
    for (_, dst) in rd.iter() {
        *indegree.get_mut(dst).expect("dst inside phi") += 1;
    }
    let mut level: HashMap<IVec, usize> = HashMap::new();
    let mut frontier: Vec<IVec> = phi.iter().filter(|p| indegree[*p] == 0).cloned().collect();
    for p in &frontier {
        level.insert(p.clone(), 0);
    }
    let mut processed = 0usize;
    while !frontier.is_empty() {
        let mut next: Vec<IVec> = Vec::new();
        for p in frontier.drain(..) {
            processed += 1;
            let lp = level[&p];
            for succ in rd.successors(&p) {
                let e = indegree.get_mut(succ).expect("succ inside phi");
                *e -= 1;
                let entry = level.entry(succ.clone()).or_insert(0);
                if *entry < lp + 1 {
                    *entry = lp + 1;
                }
                if *e == 0 {
                    next.push(succ.clone());
                }
            }
        }
        frontier = next;
    }
    assert_eq!(
        processed,
        phi.len(),
        "dependence relation contains a cycle — forward relations are acyclic by construction"
    );
    let n_stages = level.values().copied().max().map_or(0, |m| m + 1);
    let mut stages = vec![DenseSet::new(phi.dim()); n_stages];
    for (p, l) in level {
        stages[l].insert(p);
    }
    DataflowPartition { stages }
}

/// Dataflow levels over an *indexed* dependence graph: nodes are
/// `0..n_nodes` and `edges` are forward pairs `(src, dst)` with
/// `src < dst`.  Returns the level of every node; the number of dataflow
/// partitioning steps is `max(level) + 1`.
///
/// This is the large-scale variant used for the Cholesky kernel (close to a
/// million statement instances), where materialising index vectors for
/// every node would be wasteful.
pub fn dataflow_levels_indexed(n_nodes: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut levels = vec![0u32; n_nodes];
    // Edges always point forward in sequential order, so a single pass in
    // node order computes the longest-path layering.
    let mut by_dst: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
    for &(src, dst) in edges {
        assert!(src < dst, "dependence edge must point forward");
        by_dst[dst as usize].push(src);
    }
    for node in 0..n_nodes {
        let mut level = 0;
        for &src in &by_dst[node] {
            level = level.max(levels[src as usize] + 1);
        }
        levels[node] = level;
    }
    levels
}

/// The number of dataflow partitioning steps (stages) of an indexed graph,
/// together with the per-stage sizes.
pub fn dataflow_stage_sizes(n_nodes: usize, edges: &[(u32, u32)]) -> Vec<usize> {
    let levels = dataflow_levels_indexed(n_nodes, edges);
    let n_stages = levels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut sizes = vec![0usize; n_stages];
    for l in levels {
        sizes[l as usize] += 1;
    }
    sizes
}

/// The naive repeated-peeling formulation of the paper (used to
/// cross-validate the topological implementation in tests; `O(steps · E)`).
pub fn dataflow_partition_by_peeling(phi: &DenseSet, rd: &DenseRelation) -> DataflowPartition {
    let mut remaining = phi.clone();
    let mut stages = Vec::new();
    while !remaining.is_empty() {
        let restricted = rd.restrict_within(&remaining);
        let p1 = remaining.subtract(&restricted.range());
        assert!(!p1.is_empty(), "no progress: dependence cycle");
        stages.push(p1.clone());
        remaining = remaining.subtract(&p1);
    }
    DataflowPartition { stages }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_relation(n: i64) -> (DenseSet, DenseRelation) {
        let phi = DenseSet::from_points(1, (1..=n).map(|i| vec![i]));
        let rd = DenseRelation::from_pairs(1, 1, (1..n).map(|i| (vec![i], vec![i + 1])));
        (phi, rd)
    }

    #[test]
    fn chain_gives_one_stage_per_iteration() {
        let (phi, rd) = chain_relation(6);
        let part = dataflow_partition(&phi, &rd);
        assert_eq!(part.n_stages(), 6);
        assert_eq!(part.total_iterations(), 6);
        assert_eq!(part.max_stage_size(), 1);
        assert!(part.validate(&phi, &rd).is_empty());
    }

    #[test]
    fn independent_iterations_are_one_stage() {
        let phi = DenseSet::from_points(1, (1..=10).map(|i| vec![i]));
        let rd = DenseRelation::new(1, 1);
        let part = dataflow_partition(&phi, &rd);
        assert_eq!(part.n_stages(), 1);
        assert_eq!(part.max_stage_size(), 10);
        assert!(part.validate(&phi, &rd).is_empty());
    }

    #[test]
    fn peeling_and_topological_agree() {
        // A small diamond-shaped dependence graph plus isolated points.
        let phi = DenseSet::from_points(1, (0..=6).map(|i| vec![i]));
        let rd = DenseRelation::from_pairs(
            1,
            1,
            vec![
                (vec![0], vec![1]),
                (vec![0], vec![2]),
                (vec![1], vec![3]),
                (vec![2], vec![3]),
                (vec![3], vec![4]),
            ],
        );
        let a = dataflow_partition(&phi, &rd);
        let b = dataflow_partition_by_peeling(&phi, &rd);
        assert_eq!(a, b);
        assert_eq!(a.n_stages(), 4);
        assert!(a.validate(&phi, &rd).is_empty());
        // stage 0 holds 0, 5, 6 (no predecessors)
        assert_eq!(a.stages[0].len(), 3);
    }

    #[test]
    fn dependences_outside_phi_are_ignored() {
        let phi = DenseSet::from_points(1, (1..=3).map(|i| vec![i]));
        let rd = DenseRelation::from_pairs(
            1,
            1,
            vec![(vec![1], vec![2]), (vec![2], vec![9]), (vec![8], vec![3])],
        );
        let part = dataflow_partition(&phi, &rd);
        assert_eq!(part.n_stages(), 2);
        assert!(part.validate(&phi, &rd).is_empty());
    }

    #[test]
    fn indexed_levels_match_dense_partitioning() {
        // chain 0 -> 1 -> 2 plus isolated 3
        let edges = vec![(0u32, 1u32), (1, 2)];
        let levels = dataflow_levels_indexed(4, &edges);
        assert_eq!(levels, vec![0, 1, 2, 0]);
        assert_eq!(dataflow_stage_sizes(4, &edges), vec![2, 1, 1]);
        // diamond
        let edges = vec![(0u32, 1u32), (0, 2), (1, 3), (2, 3)];
        assert_eq!(dataflow_stage_sizes(4, &edges), vec![1, 2, 1]);
        // empty graph
        assert_eq!(dataflow_stage_sizes(0, &[]), Vec::<usize>::new());
        assert_eq!(dataflow_stage_sizes(3, &[]), vec![3]);
    }

    #[test]
    fn validation_detects_bad_layerings() {
        let (phi, rd) = chain_relation(3);
        let good = dataflow_partition(&phi, &rd);
        assert!(good.validate(&phi, &rd).is_empty());
        // put everything in one stage: dependences stay inside the stage
        let bad = DataflowPartition {
            stages: vec![phi.clone()],
        };
        assert!(!bad.validate(&phi, &rd).is_empty());
        // drop an iteration: coverage violated
        let partial = DataflowPartition {
            stages: vec![
                DenseSet::from_points(1, vec![vec![1]]),
                DenseSet::from_points(1, vec![vec![2]]),
            ],
        };
        assert!(!partial.validate(&phi, &rd).is_empty());
    }
}
