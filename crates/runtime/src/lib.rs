//! Parallel execution substrate for recurrence-chain schedules.
//!
//! This crate stands in for the paper's Fortran + OpenMP + 4-CPU Itanium
//! testbed:
//!
//! * [`mod@array`] — the array store generated loops compute on (sparse,
//!   supports negative subscripts, deterministic initial values),
//! * [`kernel`] — statement kernels; [`RefKernel`] derives an
//!   order-sensitive computation directly from a program's array
//!   references so that schedule correctness is observable,
//! * [`executor`] — the sequential reference executor, the multi-threaded
//!   [`ParallelExecutor`] with per-phase barriers, per-chain work batching
//!   and write-conflict detection, and schedule verification (parallel
//!   result == sequential result),
//! * [`cost`] — the calibrated analytic cost model that turns schedules
//!   into the speedup curves of Figure 3 even on machines with too few
//!   cores to show real scaling (measured wall-clock speedups come from
//!   [`ParallelExecutor`] via the benchmark harness); it also drives the
//!   executor's sequential fallback for schedules too small to amortise
//!   pool overhead,
//! * [`pool`] — the generalised `scope`/`par_map` thread-pool facility
//!   (re-exported [`rcp_pool`]) that non-schedule work — sharded dependence
//!   analysis, per-array barrier merges, concurrent benchmark experiments —
//!   shares with the executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rcp_pool as pool;

pub mod array;
pub mod cost;
pub mod executor;
pub mod kernel;

pub use array::{Array, ArrayStore, BufferedView, StoreView};
pub use cost::{makespan, CostModel};
pub use executor::{
    execute_schedule, execute_sequential, verify_schedule, ExecutionResult, ParallelExecutor,
    Verification,
};
pub use kernel::{FnKernel, Kernel, RefKernel};
