//! Schedule executors: the stand-in for the paper's OpenMP runtime.
//!
//! * [`execute_sequential`] runs the program in original lexicographic
//!   order — the reference both for correctness and for speedup
//!   normalisation.
//! * [`ParallelExecutor`] (and its [`execute_schedule`] convenience
//!   wrapper) runs a [`Schedule`] phase by phase on `n_threads` OS worker
//!   threads.  Work items of a DOALL phase and different chains of a chain
//!   phase — the independent recurrence chains of the paper's Theorem-1
//!   partition — execute concurrently; small units are packed into batches
//!   so per-unit scheduling overhead stays amortised.  Each unit computes
//!   against the frozen pre-phase store through a [`BufferedView`], and the
//!   buffered writes are merged at the phase barrier.  Overlapping writes
//!   by two concurrent units are reported as a race (a correct partition
//!   never produces one).  On the trusted-schedule fast path large barrier
//!   merges are sharded per-array over the pool, and a cost-model-driven
//!   sequential fallback (see [`ParallelExecutor::with_sequential_fallback`])
//!   runs schedules too small to amortise pool overhead inline instead.
//! * [`verify_schedule`] compares the parallel result against the
//!   sequential result element-wise.
//!
//! The thread pool is built on `std::thread::scope` with a shared atomic
//! work queue (dynamic self-scheduling, like OpenMP `schedule(dynamic)`).
//! The workspace builds in fully offline environments, so rayon cannot be
//! assumed; the executor keeps the same phase/barrier semantics a
//! rayon-backed implementation would have, and `ParallelExecutor` is the
//! single seam to swap one in.

use crate::array::{Array, ArrayStore, BufferedView};
use crate::cost::CostModel;
use crate::kernel::Kernel;
use rcp_codegen::{Phase, Schedule, WorkItem};
use rcp_intlin::IVec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Registry handles for the executor's phase/merge statistics — the
/// `executor.*` metrics a profile or `rcp stats` reports.  Resolved once;
/// each use is one relaxed `fetch_add`.
struct ExecMetrics {
    phases: rcp_trace::Counter,
    merge_replay: rcp_trace::Counter,
    merge_sharded: rcp_trace::Counter,
    merge_writes: rcp_trace::Counter,
    races: rcp_trace::Counter,
    phase_us: rcp_trace::Histogram,
}

fn metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ExecMetrics {
        phases: rcp_trace::counter("executor.phases"),
        merge_replay: rcp_trace::counter("executor.merge.replay"),
        merge_sharded: rcp_trace::counter("executor.merge.sharded"),
        merge_writes: rcp_trace::counter("executor.merge.writes"),
        races: rcp_trace::counter("executor.races"),
        phase_us: rcp_trace::histogram("executor.phase_us"),
    })
}

/// The outcome of executing a schedule.
#[derive(Debug)]
pub struct ExecutionResult {
    /// The final array contents.
    pub store: ArrayStore,
    /// Wall-clock time per phase.
    pub phase_times: Vec<Duration>,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Write-write races detected between concurrent units of a phase
    /// (empty for a valid schedule).
    pub races: Vec<(String, IVec)>,
}

impl ExecutionResult {
    /// True when no intra-phase write conflicts were detected.
    pub fn race_free(&self) -> bool {
        self.races.is_empty()
    }
}

/// Executes the program sequentially (original statement-instance order).
pub fn execute_sequential(schedule: &Schedule, kernel: &dyn Kernel) -> ArrayStore {
    let mut store = ArrayStore::new();
    for phase in &schedule.phases {
        match phase {
            Phase::Doall(items) => {
                for item in items {
                    run_item(item, kernel, &mut store);
                }
            }
            Phase::ChainSet(chains) => {
                for chain in chains {
                    for item in chain {
                        run_item(item, kernel, &mut store);
                    }
                }
            }
        }
    }
    store
}

/// Executes a schedule with `n_threads` workers (see [`ParallelExecutor`]).
pub fn execute_schedule(
    schedule: &Schedule,
    kernel: &(dyn Kernel + Sync),
    n_threads: usize,
) -> ExecutionResult {
    ParallelExecutor::new(n_threads).execute(schedule, kernel)
}

/// A phase-by-phase parallel executor over a pool of OS threads.
///
/// Independent units — the work items of a DOALL phase, the whole
/// recurrence chains of a chain phase — are distributed over the workers
/// through a shared atomic queue.  Consecutive small units are packed into
/// *batches* of at least [`ParallelExecutor::with_min_batch_instances`]
/// statement instances each, so that a phase of ten thousand one-instance
/// items does not pay ten thousand queue operations.
#[derive(Clone, Debug)]
pub struct ParallelExecutor {
    n_threads: usize,
    min_batch_instances: usize,
    detect_races: bool,
    sequential_fallback: bool,
    cost_model: CostModel,
}

/// One unit of intra-phase concurrency: the items execute sequentially in
/// order, distinct units may run on different workers.
type Unit<'s> = &'s [WorkItem];

/// The buffered writes of one unit or batch, grouped by array.
type WriteBuffer = Vec<(String, Vec<(IVec, f64)>)>;

impl ParallelExecutor {
    /// Default number of statement instances a batch is grown to before the
    /// next unit starts a new batch.
    pub const DEFAULT_MIN_BATCH_INSTANCES: usize = 64;

    /// Buffered writes below this count are merged inline at the barrier;
    /// at or above it (without race detection) the merge is sharded
    /// per-array over the pool.
    pub const PAR_MERGE_MIN_WRITES: usize = 8 * 1024;

    /// An executor with `n_threads` workers (0 and 1 both mean "run
    /// inline"), default batching, and the cost-model-driven sequential
    /// fallback enabled.
    pub fn new(n_threads: usize) -> Self {
        ParallelExecutor {
            n_threads: n_threads.max(1),
            min_batch_instances: Self::DEFAULT_MIN_BATCH_INSTANCES,
            detect_races: true,
            sequential_fallback: true,
            cost_model: CostModel::default(),
        }
    }

    /// Overrides the batching granularity; `1` disables batching (every
    /// unit is its own queue entry).
    pub fn with_min_batch_instances(mut self, min_batch_instances: usize) -> Self {
        self.min_batch_instances = min_batch_instances.max(1);
        self
    }

    /// Enables or disables intra-phase write-write race detection.
    ///
    /// Detection is on by default and is what [`verify_schedule`] relies
    /// on.  Disabling it is the trusted-schedule fast path for measured
    /// benchmark runs: units of one batch then share one write buffer, so
    /// the executor does no per-unit bookkeeping and the barrier merge does
    /// no conflict tracking.  For a *valid* schedule (disjoint writes
    /// between concurrent units, reads only of pre-phase values) the final
    /// store is identical either way.
    pub fn with_race_detection(mut self, detect_races: bool) -> Self {
        self.detect_races = detect_races;
        self
    }

    /// Supplies the cost model used by the sequential-fallback decision
    /// (defaults to [`CostModel::default`]; benchmarks pass a calibrated
    /// model so the decision reflects the real per-instance cost).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Enables or disables the cost-model-driven sequential fallback.
    ///
    /// With the fallback on (the default), a schedule whose modelled pool
    /// execution — thread spawning, per-phase barriers, work divided over
    /// at most the hardware's threads — does not beat inline sequential
    /// execution runs on the calling thread instead.  Small schedules then
    /// no longer pay pool overhead for a guaranteed slowdown, and thread
    /// counts beyond the hardware are never oversubscribed.
    pub fn with_sequential_fallback(mut self, sequential_fallback: bool) -> Self {
        self.sequential_fallback = sequential_fallback;
        self
    }

    /// The number of worker threads the executor schedules onto.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// True when `execute` would run the schedule on the worker pool rather
    /// than inline on the caller.
    pub fn uses_pool(&self, schedule: &Schedule) -> bool {
        self.n_threads > 1
            && (!self.sequential_fallback
                || self.cost_model.parallel_pays_off(
                    schedule,
                    self.n_threads,
                    rcp_pool::available_threads(),
                ))
    }

    /// Executes the schedule and returns the final store, per-phase wall
    /// clock, and any intra-phase write-write races.
    pub fn execute(&self, schedule: &Schedule, kernel: &(dyn Kernel + Sync)) -> ExecutionResult {
        let _span = rcp_trace::span!("executor.run");
        let result = if self.uses_pool(schedule) {
            self.execute_on_pool(schedule, kernel)
        } else {
            self.execute_on_caller(schedule, kernel)
        };
        let m = metrics();
        m.phases.add(result.phase_times.len() as u64);
        m.races.add(result.races.len() as u64);
        for phase in &result.phase_times {
            m.phase_us
                .observe(u64::try_from(phase.as_micros()).unwrap_or(u64::MAX));
        }
        result
    }

    /// Single-worker execution: every phase runs on the calling thread,
    /// keeping the buffered-view semantics (and race detection) per unit.
    fn execute_on_caller(
        &self,
        schedule: &Schedule,
        kernel: &(dyn Kernel + Sync),
    ) -> ExecutionResult {
        let mut store = ArrayStore::new();
        let mut phase_times = Vec::with_capacity(schedule.phases.len());
        let mut races = Vec::new();
        let start_all = Instant::now();
        for phase in &schedule.phases {
            let start = Instant::now();
            rcp_guard::tick(rcp_guard::Stage::Execution, 1);
            rcp_guard::fail_point("runtime::phase", rcp_guard::Stage::Execution);
            if !self.detect_races {
                // Without detection a single worker executing units in
                // order is equivalent to buffered execution for the valid
                // schedules that mode is for — run the phase directly, no
                // per-phase unit vector.
                for item in phase_items(phase) {
                    run_item(item, kernel, &mut store);
                }
                phase_times.push(start.elapsed());
                continue;
            }
            let units = phase_units(phase);
            if units.len() == 1 {
                // A single unit cannot race.
                for unit in &units {
                    for item in *unit {
                        run_item(item, kernel, &mut store);
                    }
                }
            } else {
                let buffers: Vec<std::ops::Range<usize>> =
                    (0..units.len()).map(|k| k..k + 1).collect();
                let buffer_writes: Vec<WriteBuffer> = buffers
                    .iter()
                    .map(|r| run_buffer(&units, r.clone(), &store, kernel))
                    .collect();
                merge_buffers(&mut store, &buffer_writes, true, &mut races);
            }
            phase_times.push(start.elapsed());
        }
        ExecutionResult {
            store,
            phase_times,
            total_time: start_all.elapsed(),
            races,
        }
    }

    /// Multi-worker execution on a pool of `n_threads` OS threads that
    /// persists across all phases of the schedule (one spawn/join per
    /// execution, not per phase — many-phase dataflow schedules would
    /// otherwise drown in thread churn).
    ///
    /// Workers park on a barrier between phases; the coordinator publishes
    /// each phase's units and batches, releases the workers, and merges
    /// their buffered writes at the phase barrier.
    // Panic-hygiene allow: the lock `expect`s fire only when a sibling
    // thread already panicked while holding the lock; every panic here is
    // caught by the surrounding catch_unwind frames, recorded with worker
    // context, and re-raised once all workers have parked — the documented
    // propagation path, never a silent hang.
    #[allow(clippy::expect_used)]
    fn execute_on_pool(
        &self,
        schedule: &Schedule,
        kernel: &(dyn Kernel + Sync),
    ) -> ExecutionResult {
        let store = RwLock::new(ArrayStore::new());
        let mut phase_times = Vec::with_capacity(schedule.phases.len());
        let mut races = Vec::new();
        let mut total_time = Duration::ZERO;

        struct PhaseTask<'s> {
            units: Vec<Unit<'s>>,
            batches: Vec<std::ops::Range<usize>>,
            detect_races: bool,
        }
        let task: RwLock<Option<PhaseTask>> = RwLock::new(None);
        let results: Mutex<Vec<(usize, WriteBuffer)>> = Mutex::new(Vec::new());
        let cursor = AtomicUsize::new(0);
        let ready = Barrier::new(self.n_threads + 1);
        let phase_start = Barrier::new(self.n_threads + 1);
        let phase_end = Barrier::new(self.n_threads + 1);
        let shutdown = AtomicBool::new(false);
        // First panic payload from any worker or the coordinator's phase
        // loop.  Worker bodies are wrapped in catch_unwind so a panicking
        // kernel can never strand the other side at a barrier (the rayon
        // executor this replaces propagated panics; a deadlock would turn a
        // crash into a silent hang).  The payload is enriched with which
        // worker it came from (`rcp_guard::with_context`) instead of being
        // flattened into a generic "worker panicked".
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let record_panic = |payload: Box<dyn std::any::Any + Send>, context: String| {
            let payload = rcp_guard::with_context(payload, context);
            // The slot lock is only ever held for this insert, so a poison
            // marker (another thread recording while panicking) protects
            // nothing: recover and keep the first payload.
            let mut slot = match panic_payload.lock() {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
            slot.get_or_insert(payload);
        };
        // Re-install the caller's budget guard inside every worker so
        // kernel-side checkpoints keep charging the session budget.
        let active_guard = rcp_guard::current();

        std::thread::scope(|scope| {
            for worker_id in 0..self.n_threads {
                // Shadow the shared state with references so the `move`
                // closure moves only those (and the copyable worker id).
                #[allow(clippy::redundant_locals)]
                let (task, store, results, cursor) = (&task, &store, &results, &cursor);
                let (ready, phase_start, phase_end) = (&ready, &phase_start, &phase_end);
                let (shutdown, record_panic, active_guard) =
                    (&shutdown, &record_panic, &active_guard);
                scope.spawn(move || {
                    rcp_guard::maybe_scope(active_guard.as_ref(), || {
                        ready.wait();
                        loop {
                            phase_start.wait();
                            if shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    rcp_guard::fail_point(
                                        "runtime::phase",
                                        rcp_guard::Stage::Execution,
                                    );
                                    let task_guard = task.read().expect("task lock poisoned");
                                    let task = task_guard.as_ref().expect("phase task published");
                                    let frozen = store.read().expect("store lock poisoned");
                                    let mut produced = Vec::new();
                                    // Dynamic self-scheduling: claim the next
                                    // unclaimed batch from the shared cursor until
                                    // the queue drains.
                                    loop {
                                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                                        let Some(range) = task.batches.get(b) else {
                                            break;
                                        };
                                        if task.detect_races {
                                            // One buffer per unit, so write-write
                                            // conflicts between units stay
                                            // observable.
                                            for unit_id in range.clone() {
                                                let writes = run_buffer(
                                                    &task.units,
                                                    unit_id..unit_id + 1,
                                                    &frozen,
                                                    kernel,
                                                );
                                                produced.push((unit_id, writes));
                                            }
                                        } else {
                                            let writes = run_buffer(
                                                &task.units,
                                                range.clone(),
                                                &frozen,
                                                kernel,
                                            );
                                            produced.push((b, writes));
                                        }
                                    }
                                    drop(frozen);
                                    drop(task_guard);
                                    if !produced.is_empty() {
                                        results
                                            .lock()
                                            .expect("results lock poisoned")
                                            .append(&mut produced);
                                    }
                                }));
                            if let Err(payload) = outcome {
                                record_panic(payload, format!("executor worker {worker_id}"));
                            }
                            phase_end.wait();
                        }
                    })
                });
            }

            // Exclude pool start-up from the measured execution time: wait
            // until every worker is parked at its first phase barrier.
            ready.wait();
            let start_all = Instant::now();

            // The coordinator's phase loop is also unwind-guarded: if it
            // panicked with workers parked, the scope's implicit join would
            // deadlock.
            let coordinator = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for phase in &schedule.phases {
                    let start = Instant::now();
                    rcp_guard::tick(rcp_guard::Stage::Execution, 1);
                    let units = phase_units(phase);
                    // Fast path: a single unit has no intra-phase
                    // concurrency (and cannot race) — run it on the
                    // coordinator while the workers stay parked.
                    if units.len() == 1 {
                        let mut store = store.write().expect("store lock poisoned");
                        for item in units[0] {
                            run_item(item, kernel, &mut store);
                        }
                        phase_times.push(start.elapsed());
                        continue;
                    }
                    let batches = self.batch_units(&units);
                    let n_buffers = if self.detect_races {
                        units.len()
                    } else {
                        batches.len()
                    };
                    *task.write().expect("task lock poisoned") = Some(PhaseTask {
                        units,
                        batches,
                        detect_races: self.detect_races,
                    });
                    cursor.store(0, Ordering::Relaxed);
                    phase_start.wait();
                    phase_end.wait();
                    if panic_payload.lock().expect("panic slot poisoned").is_some() {
                        break;
                    }
                    let mut per_buffer: Vec<WriteBuffer> = vec![Vec::new(); n_buffers];
                    for (buffer_id, writes) in
                        results.lock().expect("results lock poisoned").drain(..)
                    {
                        per_buffer[buffer_id] = writes;
                    }
                    let mut store = store.write().expect("store lock poisoned");
                    if self.detect_races {
                        merge_buffers(&mut store, &per_buffer, true, &mut races);
                    } else {
                        merge_buffers_per_array(
                            &mut store,
                            &per_buffer,
                            self.n_threads.min(rcp_pool::available_threads()),
                        );
                    }
                    phase_times.push(start.elapsed());
                }
            }));
            if let Err(payload) = coordinator {
                record_panic(payload, "executor coordinator".to_string());
            }
            total_time = start_all.elapsed();
            // Release the workers to exit; every worker is parked at
            // phase_start (their bodies cannot unwind), so this cannot
            // hang.
            shutdown.store(true, Ordering::Release);
            phase_start.wait();
        });

        let recorded = match panic_payload.into_inner() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(payload) = recorded {
            std::panic::resume_unwind(payload);
        }

        ExecutionResult {
            store: store.into_inner().expect("store lock poisoned"),
            phase_times,
            total_time,
            races,
        }
    }

    /// Packs consecutive units into batches of at least
    /// `min_batch_instances` statement instances.  Returns the unit-index
    /// ranges of each batch (batches partition `0..units.len()`).
    fn batch_units(&self, units: &[Unit]) -> Vec<std::ops::Range<usize>> {
        let mut batches = Vec::new();
        let mut batch_start = 0;
        let mut batch_instances = 0usize;
        for (k, unit) in units.iter().enumerate() {
            batch_instances += unit.iter().map(|i| i.len()).sum::<usize>();
            if batch_instances >= self.min_batch_instances {
                batches.push(batch_start..k + 1);
                batch_start = k + 1;
                batch_instances = 0;
            }
        }
        if batch_start < units.len() {
            batches.push(batch_start..units.len());
        }
        batches
    }
}

/// All work items of a phase in execution order (no per-unit structure).
fn phase_items(phase: &Phase) -> impl Iterator<Item = &WorkItem> {
    let chains: &[Vec<WorkItem>] = match phase {
        Phase::Doall(items) => std::slice::from_ref(items),
        Phase::ChainSet(chains) => chains.as_slice(),
    };
    chains.iter().flatten()
}

/// The units of intra-phase concurrency: items of a DOALL, whole chains of
/// a chain set.
fn phase_units(phase: &Phase) -> Vec<Unit<'_>> {
    match phase {
        Phase::Doall(items) => items.iter().map(std::slice::from_ref).collect(),
        Phase::ChainSet(chains) => chains.iter().map(|c| c.as_slice()).collect(),
    }
}

/// Runs a contiguous range of units against the frozen store through one
/// buffered view and returns its writes.
fn run_buffer(
    units: &[Unit],
    range: std::ops::Range<usize>,
    frozen: &ArrayStore,
    kernel: &(dyn Kernel + Sync),
) -> WriteBuffer {
    let mut view = BufferedView::new(frozen);
    for unit in &units[range] {
        for item in *unit {
            for (stmt, indices) in &item.instances {
                kernel.execute(*stmt, indices, &mut view);
            }
        }
    }
    view.into_writes()
}

/// Merges buffered writes into the store at a phase barrier.  With
/// `detect_races` there is one buffer per unit and write-write conflicts
/// between different units are recorded; otherwise the merge is a plain
/// replay.
fn merge_buffers(
    store: &mut ArrayStore,
    buffer_writes: &[WriteBuffer],
    detect_races: bool,
    races: &mut Vec<(String, IVec)>,
) {
    rcp_guard::fail_point("runtime::merge", rcp_guard::Stage::Execution);
    let m = metrics();
    m.merge_replay.inc();
    m.merge_writes.add(
        buffer_writes
            .iter()
            .flat_map(|w| w.iter())
            .map(|(_, elements)| elements.len() as u64)
            .sum(),
    );
    if detect_races {
        let mut writer: HashMap<(String, IVec), usize> = HashMap::new();
        for (unit_id, writes) in buffer_writes.iter().enumerate() {
            for (array, elements) in writes {
                for (index, value) in elements {
                    match writer.entry((array.clone(), index.clone())) {
                        std::collections::hash_map::Entry::Occupied(mut entry) => {
                            if *entry.get() != unit_id {
                                races.push((array.clone(), index.clone()));
                            }
                            entry.insert(unit_id);
                        }
                        std::collections::hash_map::Entry::Vacant(entry) => {
                            entry.insert(unit_id);
                        }
                    }
                    store.set(array, index, *value);
                }
            }
        }
    } else {
        for writes in buffer_writes {
            for (array, elements) in writes {
                for (index, value) in elements {
                    store.set(array, index, *value);
                }
            }
        }
    }
}

/// Replays buffered writes into the store with the merge sharded
/// **per-array** over up to `n_threads` threads: every array's writes are
/// applied by exactly one thread, in buffer order, so the result is
/// identical to the sequential replay (concurrent units of a valid schedule
/// write disjoint elements; for overlapping writes the per-array buffer
/// order still matches the sequential merge).  Small merges — fewer than
/// [`ParallelExecutor::PAR_MERGE_MIN_WRITES`] writes, or a single array —
/// replay inline: sharding them would cost more in thread spawns than the
/// replay itself.
// Panic-hygiene allow: the grouped-map `unwrap` walks keys just collected
// from that map, and the job-lock `expect`s are uncontended single-owner
// locks whose poisoning implies a merge panic already in flight (caught by
// the executor's unwind frames).
#[allow(clippy::unwrap_used, clippy::expect_used)]
fn merge_buffers_per_array(
    store: &mut ArrayStore,
    buffer_writes: &[WriteBuffer],
    n_threads: usize,
) {
    rcp_guard::fail_point("runtime::merge", rcp_guard::Stage::Execution);
    let inline_replay = |store: &mut ArrayStore| {
        for writes in buffer_writes {
            for (array, elements) in writes {
                for (index, value) in elements {
                    store.set(array, index, *value);
                }
            }
        }
    };
    let total_writes: usize = buffer_writes
        .iter()
        .flat_map(|w| w.iter())
        .map(|(_, elements)| elements.len())
        .sum();
    let m = metrics();
    m.merge_writes.add(total_writes as u64);
    // Decide inline vs sharded before building any grouping, so the common
    // small-merge case allocates nothing extra.
    if n_threads <= 1 || total_writes < ParallelExecutor::PAR_MERGE_MIN_WRITES {
        m.merge_replay.inc();
        inline_replay(store);
        return;
    }
    // Group each array's write runs in buffer order.
    let mut grouped: HashMap<&str, Vec<&[(IVec, f64)]>> = HashMap::new();
    for writes in buffer_writes {
        for (array, elements) in writes {
            grouped
                .entry(array.as_str())
                .or_default()
                .push(elements.as_slice());
        }
    }
    if grouped.len() <= 1 {
        m.merge_replay.inc();
        inline_replay(store);
        return;
    }
    m.merge_sharded.inc();
    let mut names: Vec<&str> = grouped.keys().copied().collect();
    names.sort_unstable();
    // Take each array out of the store, fill them concurrently (the Mutex
    // is uncontended — one job per array), then put them back.
    type MergeJob<'w> = Mutex<(Array, Vec<&'w [(IVec, f64)]>)>;
    let jobs: Vec<MergeJob> = names
        .iter()
        .map(|name| Mutex::new((store.take_array(name), grouped.remove(name).unwrap())))
        .collect();
    rcp_pool::par_map(n_threads, &jobs, |job| {
        let mut guard = job.lock().expect("merge job poisoned");
        let (array, runs) = &mut *guard;
        for run in runs.iter() {
            for (index, value) in *run {
                array.set(index, *value);
            }
        }
    });
    for (name, job) in names.into_iter().zip(jobs) {
        let (array, _) = job.into_inner().expect("merge job poisoned");
        store.insert_array(name, array);
    }
}

fn run_item(item: &WorkItem, kernel: &dyn Kernel, store: &mut ArrayStore) {
    for (stmt, indices) in &item.instances {
        kernel.execute(*stmt, indices, store);
    }
}

/// The result of verifying a parallel schedule against the sequential
/// reference.
#[derive(Debug)]
pub struct Verification {
    /// Element-wise mismatches `(array, index, sequential, parallel)`.
    pub mismatches: Vec<(String, IVec, f64, f64)>,
    /// Races detected during parallel execution.
    pub races: Vec<(String, IVec)>,
}

impl Verification {
    /// True when the parallel execution is equivalent to the sequential one
    /// and race free.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.races.is_empty()
    }
}

/// Runs both the sequential reference and the parallel schedule and compares
/// the resulting array stores.
pub fn verify_schedule(
    sequential: &Schedule,
    parallel: &Schedule,
    kernel: &(dyn Kernel + Sync),
    n_threads: usize,
) -> Verification {
    let reference = execute_sequential(sequential, kernel);
    let result = execute_schedule(parallel, kernel, n_threads);
    Verification {
        mismatches: reference.diff(&result.store, 1e-9),
        races: result.races,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::RefKernel;
    use rcp_core::concrete_partition;
    use rcp_depend::DependenceAnalysis;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::{ArrayRef, Program};

    fn figure2() -> Program {
        Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        )
    }

    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    #[test]
    fn figure2_partition_schedule_matches_sequential() {
        let p = figure2();
        let analysis = DependenceAnalysis::loop_level(&p);
        let part = concrete_partition(&analysis, &[]);
        let parallel = Schedule::from_partition(&analysis, &part, "figure2-rec");
        let sequential = Schedule::sequential(&p, &[]);
        let kernel = RefKernel::new(&p);
        for threads in [1, 2, 4] {
            let v = verify_schedule(&sequential, &parallel, &kernel, threads);
            assert!(
                v.passed(),
                "verification failed with {threads} threads: {:?}",
                v.mismatches
            );
        }
    }

    #[test]
    fn example1_partition_schedule_matches_sequential() {
        let p = example1();
        let analysis = DependenceAnalysis::loop_level(&p);
        let part = concrete_partition(&analysis, &[20, 25]);
        let parallel = Schedule::from_partition(&analysis, &part, "example1-rec");
        let sequential = Schedule::sequential(&p, &[20, 25]);
        let kernel = RefKernel::new(&p);
        let v = verify_schedule(&sequential, &parallel, &kernel, 4);
        assert!(
            v.passed(),
            "mismatches: {:?}",
            &v.mismatches[..v.mismatches.len().min(5)]
        );
    }

    #[test]
    fn a_wrong_schedule_is_caught() {
        // Schedule the whole loop as a single DOALL: dependent iterations
        // now race against the frozen store and the result differs from the
        // sequential one.
        let p = figure2();
        let analysis = DependenceAnalysis::loop_level(&p);
        let phi = analysis.phi.bind_params(&[]);
        let all = rcp_presburger::DenseSet::from_union(&phi);
        let wrong = Schedule::doall_phase(&analysis, &all, "figure2-all-parallel");
        let sequential = Schedule::sequential(&p, &[]);
        let kernel = RefKernel::new(&p);
        let v = verify_schedule(&sequential, &wrong, &kernel, 2);
        assert!(!v.passed(), "an invalid schedule must not verify");
    }

    #[test]
    fn races_are_detected() {
        // Two work items writing the same element in one DOALL phase.
        let p = figure2();
        let kernel = RefKernel::new(&p);
        let item = WorkItem::single(0, vec![6]);
        let schedule = Schedule {
            name: "racy".to_string(),
            phases: vec![Phase::Doall(vec![item.clone(), item])],
        };
        let result = execute_schedule(&schedule, &kernel, 2);
        assert!(!result.race_free());
    }

    #[test]
    fn worker_panics_propagate_instead_of_hanging() {
        use crate::kernel::FnKernel;
        let kernel = FnKernel(
            |_s: usize, idx: &[i64], store: &mut dyn crate::array::StoreView| {
                if idx[0] == 7 {
                    panic!("kernel boom");
                }
                store.write("a", idx, 1.0);
            },
        );
        let items = (1..=20).map(|i| WorkItem::single(0, vec![i])).collect();
        let schedule = Schedule {
            name: "panicky".to_string(),
            phases: vec![Phase::Doall(items)],
        };
        for threads in [2, 4] {
            // Fallback disabled so the pool path itself is exercised even
            // for this tiny schedule (and on single-core machines).
            let executor = ParallelExecutor::new(threads)
                .with_min_batch_instances(1)
                .with_sequential_fallback(false);
            assert!(executor.uses_pool(&schedule));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                executor.execute(&schedule, &kernel)
            }));
            match outcome {
                Err(payload) => {
                    // The payload must survive the worker boundary with the
                    // original message plus which worker raised it — not be
                    // flattened into a generic "worker panicked".
                    let captured = payload
                        .downcast::<rcp_guard::CapturedPanic>()
                        .expect("worker panics carry a CapturedPanic payload");
                    assert_eq!(captured.message, "kernel boom");
                    assert_eq!(captured.context.len(), 1, "{:?}", captured.context);
                    assert!(
                        captured.context[0].starts_with("executor worker "),
                        "context names the worker: {:?}",
                        captured.context
                    );
                }
                Ok(_) => panic!("the kernel panic must propagate, not hang or vanish"),
            }
        }
    }

    #[test]
    fn small_schedules_fall_back_to_inline_execution() {
        let p = figure2();
        let seq = Schedule::sequential(&p, &[]);
        // 20 instances can never amortise pool start-up: the default
        // executor must choose the inline path at any thread count…
        for threads in [2, 4, 16] {
            assert!(!ParallelExecutor::new(threads).uses_pool(&seq));
        }
        // …and still produce the correct result there.
        let kernel = RefKernel::new(&p);
        let a = execute_sequential(&seq, &kernel);
        let b = ParallelExecutor::new(4).execute(&seq, &kernel);
        assert!(a.diff(&b.store, 0.0).is_empty());
        assert!(b.race_free());
        // Opting out restores the pool path.
        assert!(ParallelExecutor::new(4)
            .with_sequential_fallback(false)
            .uses_pool(&seq));
    }

    #[test]
    fn per_array_parallel_merge_matches_sequential_replay() {
        // Enough writes across several arrays to cross the parallel-merge
        // threshold, including cross-buffer overwrites of the same element
        // (buffer order must win, as in the sequential replay).
        let arrays = ["a", "b", "c", "d", "e"];
        let buffers: Vec<WriteBuffer> = (0..8)
            .map(|b| {
                arrays
                    .iter()
                    .map(|name| {
                        let elements: Vec<(IVec, f64)> = (0..1024)
                            .map(|i| (vec![i as i64 % 700], (b * 10_000 + i) as f64))
                            .collect();
                        (name.to_string(), elements)
                    })
                    .collect()
            })
            .collect();
        let mut reference = ArrayStore::new();
        merge_buffers(&mut reference, &buffers, false, &mut Vec::new());
        for threads in [1, 2, 4] {
            let mut sharded = ArrayStore::new();
            merge_buffers_per_array(&mut sharded, &buffers, threads);
            assert!(
                reference.diff(&sharded, 0.0).is_empty(),
                "per-array merge with {threads} threads must equal the replay"
            );
        }
    }

    #[test]
    fn sequential_and_one_thread_schedule_agree_trivially() {
        let p = figure2();
        let seq = Schedule::sequential(&p, &[]);
        let kernel = RefKernel::new(&p);
        let a = execute_sequential(&seq, &kernel);
        let b = execute_schedule(&seq, &kernel, 1);
        assert!(a.diff(&b.store, 1e-12).is_empty());
        assert!(b.race_free());
    }
}
