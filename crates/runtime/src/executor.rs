//! Schedule executors: the stand-in for the paper's OpenMP runtime.
//!
//! * [`execute_sequential`] runs the program in original lexicographic
//!   order — the reference both for correctness and for speedup
//!   normalisation.
//! * [`execute_schedule`] runs a [`Schedule`] phase by phase on a rayon
//!   thread pool with `n_threads` workers.  Work items of a DOALL phase and
//!   different chains of a chain phase execute concurrently; each item/chain
//!   computes against the frozen pre-phase store through a
//!   [`BufferedView`], and the buffered writes are merged at the phase
//!   barrier.  Overlapping writes by two concurrent units are reported as
//!   a race (a correct partition never produces one).
//! * [`verify_schedule`] compares the parallel result against the
//!   sequential result element-wise.

use crate::array::{ArrayStore, BufferedView};
use crate::kernel::Kernel;
use rcp_codegen::{Phase, Schedule, WorkItem};
use rcp_intlin::IVec;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The outcome of executing a schedule.
#[derive(Debug)]
pub struct ExecutionResult {
    /// The final array contents.
    pub store: ArrayStore,
    /// Wall-clock time per phase.
    pub phase_times: Vec<Duration>,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Write-write races detected between concurrent units of a phase
    /// (empty for a valid schedule).
    pub races: Vec<(String, IVec)>,
}

impl ExecutionResult {
    /// True when no intra-phase write conflicts were detected.
    pub fn race_free(&self) -> bool {
        self.races.is_empty()
    }
}

/// Executes the program sequentially (original statement-instance order).
pub fn execute_sequential(schedule: &Schedule, kernel: &dyn Kernel) -> ArrayStore {
    let mut store = ArrayStore::new();
    for phase in &schedule.phases {
        match phase {
            Phase::Doall(items) => {
                for item in items {
                    run_item(item, kernel, &mut store);
                }
            }
            Phase::ChainSet(chains) => {
                for chain in chains {
                    for item in chain {
                        run_item(item, kernel, &mut store);
                    }
                }
            }
        }
    }
    store
}

/// Executes a schedule with `n_threads` rayon workers.
pub fn execute_schedule(
    schedule: &Schedule,
    kernel: &(dyn Kernel + Sync),
    n_threads: usize,
) -> ExecutionResult {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(n_threads.max(1))
        .build()
        .expect("failed to build thread pool");
    let mut store = ArrayStore::new();
    let mut phase_times = Vec::with_capacity(schedule.phases.len());
    let mut races = Vec::new();
    let start_all = Instant::now();

    for phase in &schedule.phases {
        let start = Instant::now();
        // Units of concurrency: items of a DOALL, whole chains of a chain set.
        let units: Vec<Vec<&WorkItem>> = match phase {
            Phase::Doall(items) => items.iter().map(|i| vec![i]).collect(),
            Phase::ChainSet(chains) => {
                chains.iter().map(|c| c.iter().collect()).collect()
            }
        };
        let frozen = &store;
        let unit_writes: Vec<Vec<(String, IVec, f64)>> = pool.install(|| {
            use rayon::prelude::*;
            units
                .par_iter()
                .map(|unit| {
                    let mut view = BufferedView::new(frozen);
                    for item in unit {
                        for (stmt, indices) in &item.instances {
                            kernel.execute(*stmt, indices, &mut view);
                        }
                    }
                    view.into_writes()
                })
                .collect()
        });
        // Merge at the barrier, detecting write-write conflicts between
        // different units.
        let mut writer: HashMap<(String, IVec), usize> = HashMap::new();
        for (unit_id, writes) in unit_writes.iter().enumerate() {
            for (array, index, value) in writes {
                if let Some(&prev) = writer.get(&(array.clone(), index.clone())) {
                    if prev != unit_id {
                        races.push((array.clone(), index.clone()));
                    }
                }
                writer.insert((array.clone(), index.clone()), unit_id);
                store.set(array, index, *value);
            }
        }
        phase_times.push(start.elapsed());
    }

    ExecutionResult { store, phase_times, total_time: start_all.elapsed(), races }
}

fn run_item(item: &WorkItem, kernel: &dyn Kernel, store: &mut ArrayStore) {
    for (stmt, indices) in &item.instances {
        kernel.execute(*stmt, indices, store);
    }
}

/// The result of verifying a parallel schedule against the sequential
/// reference.
#[derive(Debug)]
pub struct Verification {
    /// Element-wise mismatches `(array, index, sequential, parallel)`.
    pub mismatches: Vec<(String, IVec, f64, f64)>,
    /// Races detected during parallel execution.
    pub races: Vec<(String, IVec)>,
}

impl Verification {
    /// True when the parallel execution is equivalent to the sequential one
    /// and race free.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.races.is_empty()
    }
}

/// Runs both the sequential reference and the parallel schedule and compares
/// the resulting array stores.
pub fn verify_schedule(
    sequential: &Schedule,
    parallel: &Schedule,
    kernel: &(dyn Kernel + Sync),
    n_threads: usize,
) -> Verification {
    let reference = execute_sequential(sequential, kernel);
    let result = execute_schedule(parallel, kernel, n_threads);
    Verification {
        mismatches: reference.diff(&result.store, 1e-9),
        races: result.races,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::RefKernel;
    use rcp_core::concrete_partition;
    use rcp_depend::DependenceAnalysis;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::{ArrayRef, Program};

    fn figure2() -> Program {
        Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        )
    }

    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    #[test]
    fn figure2_partition_schedule_matches_sequential() {
        let p = figure2();
        let analysis = DependenceAnalysis::loop_level(&p);
        let part = concrete_partition(&analysis, &[]);
        let parallel = Schedule::from_partition(&analysis, &part, "figure2-rec");
        let sequential = Schedule::sequential(&p, &[]);
        let kernel = RefKernel::new(&p);
        for threads in [1, 2, 4] {
            let v = verify_schedule(&sequential, &parallel, &kernel, threads);
            assert!(v.passed(), "verification failed with {threads} threads: {:?}", v.mismatches);
        }
    }

    #[test]
    fn example1_partition_schedule_matches_sequential() {
        let p = example1();
        let analysis = DependenceAnalysis::loop_level(&p);
        let part = concrete_partition(&analysis, &[20, 25]);
        let parallel = Schedule::from_partition(&analysis, &part, "example1-rec");
        let sequential = Schedule::sequential(&p, &[20, 25]);
        let kernel = RefKernel::new(&p);
        let v = verify_schedule(&sequential, &parallel, &kernel, 4);
        assert!(v.passed(), "mismatches: {:?}", &v.mismatches[..v.mismatches.len().min(5)]);
    }

    #[test]
    fn a_wrong_schedule_is_caught() {
        // Schedule the whole loop as a single DOALL: dependent iterations
        // now race against the frozen store and the result differs from the
        // sequential one.
        let p = figure2();
        let analysis = DependenceAnalysis::loop_level(&p);
        let phi = analysis.phi.bind_params(&[]);
        let all = rcp_presburger::DenseSet::from_union(&phi);
        let wrong = Schedule::doall_phase(&analysis, &all, "figure2-all-parallel");
        let sequential = Schedule::sequential(&p, &[]);
        let kernel = RefKernel::new(&p);
        let v = verify_schedule(&sequential, &wrong, &kernel, 2);
        assert!(!v.passed(), "an invalid schedule must not verify");
    }

    #[test]
    fn races_are_detected() {
        // Two work items writing the same element in one DOALL phase.
        let p = figure2();
        let kernel = RefKernel::new(&p);
        let item = WorkItem::single(0, vec![6]);
        let schedule = Schedule {
            name: "racy".to_string(),
            phases: vec![Phase::Doall(vec![item.clone(), item])],
        };
        let result = execute_schedule(&schedule, &kernel, 2);
        assert!(!result.race_free());
    }

    #[test]
    fn sequential_and_one_thread_schedule_agree_trivially() {
        let p = figure2();
        let seq = Schedule::sequential(&p, &[]);
        let kernel = RefKernel::new(&p);
        let a = execute_sequential(&seq, &kernel);
        let b = execute_schedule(&seq, &kernel, 1);
        assert!(a.diff(&b.store, 1e-12).is_empty());
        assert!(b.race_free());
    }
}
