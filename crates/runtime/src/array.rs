//! The array store: the memory the generated loops compute on.
//!
//! Arrays are stored sparsely (element index vector → `f64`), which handles
//! the negative subscripts of the Cholesky kernel and the unknown extents of
//! parametric loops without any up-front sizing.  Elements that were never
//! written read as a deterministic, index-dependent initial value so that
//! result comparison between the sequential and the parallel execution is
//! meaningful even for partially-initialised arrays.

use rcp_intlin::IVec;
use std::collections::HashMap;

/// A single (sparse, dynamically sized) multi-dimensional array of `f64`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Array {
    elements: HashMap<IVec, f64>,
}

impl Array {
    /// Creates an empty array.
    pub fn new() -> Self {
        Array::default()
    }

    /// Reads an element; unwritten elements return a deterministic initial
    /// value derived from the index (a stand-in for "whatever the program
    /// initialised the array with").
    pub fn get(&self, index: &[i64]) -> f64 {
        match self.elements.get(index) {
            Some(&v) => v,
            None => Self::initial_value(index),
        }
    }

    /// Writes an element.
    pub fn set(&mut self, index: &[i64], value: f64) {
        self.elements.insert(index.to_vec(), value);
    }

    /// Number of elements that have been written.
    pub fn written_len(&self) -> usize {
        self.elements.len()
    }

    /// The deterministic initial value of an element.
    pub fn initial_value(index: &[i64]) -> f64 {
        // A small, smooth, index-dependent value keeps kernels numerically
        // tame while making distinct elements distinguishable.
        let mut acc = 1.0f64;
        for (k, &x) in index.iter().enumerate() {
            acc += (x as f64) * 0.01 * (k as f64 + 1.0);
        }
        acc
    }

    /// Iterates the written elements.
    pub fn iter(&self) -> impl Iterator<Item = (&IVec, &f64)> {
        self.elements.iter()
    }
}

/// A named collection of arrays.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ArrayStore {
    arrays: HashMap<String, Array>,
}

impl ArrayStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ArrayStore::default()
    }

    /// Reads `array[index]`.
    pub fn get(&self, array: &str, index: &[i64]) -> f64 {
        match self.arrays.get(array) {
            Some(a) => a.get(index),
            None => Array::initial_value(index),
        }
    }

    /// Writes `array[index] = value`.
    pub fn set(&mut self, array: &str, index: &[i64], value: f64) {
        self.arrays
            .entry(array.to_string())
            .or_default()
            .set(index, value);
    }

    /// The named array, if any element of it has been written.
    pub fn array(&self, name: &str) -> Option<&Array> {
        self.arrays.get(name)
    }

    /// Removes and returns the named array (an empty array when it was
    /// never written).  Together with [`Self::insert_array`] this lets the
    /// phase-barrier merge take disjoint arrays out of the store, fill them
    /// on different threads, and put them back.
    pub fn take_array(&mut self, name: &str) -> Array {
        self.arrays.remove(name).unwrap_or_default()
    }

    /// (Re-)inserts an array under the given name, replacing any existing
    /// contents.
    pub fn insert_array(&mut self, name: &str, array: Array) {
        self.arrays.insert(name.to_string(), array);
    }

    /// Total number of written elements across all arrays.
    pub fn written_len(&self) -> usize {
        self.arrays.values().map(|a| a.written_len()).sum()
    }

    /// Compares two stores element-wise; returns the mismatching
    /// `(array, index, left, right)` tuples (with a small absolute
    /// tolerance for floating-point accumulation differences).
    pub fn diff(&self, other: &ArrayStore, tolerance: f64) -> Vec<(String, IVec, f64, f64)> {
        let mut mismatches = Vec::new();
        let mut names: Vec<&String> = self.arrays.keys().chain(other.arrays.keys()).collect();
        names.sort();
        names.dedup();
        for name in names {
            let empty = Array::new();
            let left = self.arrays.get(name.as_str()).unwrap_or(&empty);
            let right = other.arrays.get(name.as_str()).unwrap_or(&empty);
            let mut indices: Vec<&IVec> =
                left.elements.keys().chain(right.elements.keys()).collect();
            indices.sort();
            indices.dedup();
            for idx in indices {
                let a = left.get(idx);
                let b = right.get(idx);
                if (a - b).abs() > tolerance {
                    mismatches.push((name.clone(), idx.clone(), a, b));
                }
            }
        }
        mismatches
    }
}

/// A read/write view of the store used by kernels.  The plain store
/// implements it directly; the parallel executor supplies buffered views
/// that defer writes until the end of a phase.
pub trait StoreView {
    /// Reads `array[index]`.
    fn read(&self, array: &str, index: &[i64]) -> f64;
    /// Writes `array[index] = value`.
    fn write(&mut self, array: &str, index: &[i64], value: f64);
}

impl StoreView for ArrayStore {
    fn read(&self, array: &str, index: &[i64]) -> f64 {
        self.get(array, index)
    }
    fn write(&mut self, array: &str, index: &[i64], value: f64) {
        self.set(array, index, value);
    }
}

/// A view that reads through to a frozen base store but keeps all writes in
/// a local overlay: used for chains and work items executed concurrently
/// with others in the same phase.
///
/// The overlay is keyed per array so that the hot read path needs no
/// allocation (a `&str` array name and `&[i64]` index borrow straight into
/// the maps).
pub struct BufferedView<'a> {
    base: &'a ArrayStore,
    overlay: HashMap<String, HashMap<IVec, f64>>,
}

impl<'a> BufferedView<'a> {
    /// Creates a view over a frozen base store.
    pub fn new(base: &'a ArrayStore) -> Self {
        BufferedView {
            base,
            overlay: HashMap::new(),
        }
    }

    /// The buffered writes grouped by array, in insertion-independent
    /// (sorted) order.
    pub fn into_writes(self) -> Vec<(String, Vec<(IVec, f64)>)> {
        let mut writes: Vec<(String, Vec<(IVec, f64)>)> = self
            .overlay
            .into_iter()
            .map(|(array, elements)| {
                let mut elements: Vec<(IVec, f64)> = elements.into_iter().collect();
                elements.sort_by(|x, y| x.0.cmp(&y.0));
                (array, elements)
            })
            .collect();
        writes.sort_by(|x, y| x.0.cmp(&y.0));
        writes
    }

    /// Total number of buffered writes.
    pub fn n_writes(&self) -> usize {
        self.overlay.values().map(|m| m.len()).sum()
    }
}

impl StoreView for BufferedView<'_> {
    fn read(&self, array: &str, index: &[i64]) -> f64 {
        match self.overlay.get(array).and_then(|m| m.get(index)) {
            Some(&v) => v,
            None => self.base.get(array, index),
        }
    }
    fn write(&mut self, array: &str, index: &[i64], value: f64) {
        match self.overlay.get_mut(array) {
            Some(m) => {
                m.insert(index.to_vec(), value);
            }
            None => {
                let mut m = HashMap::new();
                m.insert(index.to_vec(), value);
                self.overlay.insert(array.to_string(), m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values_are_deterministic() {
        let s = ArrayStore::new();
        assert_eq!(s.get("a", &[3, 4]), s.get("a", &[3, 4]));
        assert_ne!(s.get("a", &[3, 4]), s.get("a", &[4, 3]));
        assert_eq!(s.get("a", &[3, 4]), s.get("b", &[3, 4])); // array-independent init
    }

    #[test]
    fn read_write_round_trip() {
        let mut s = ArrayStore::new();
        s.set("a", &[1, 2], 42.0);
        assert_eq!(s.get("a", &[1, 2]), 42.0);
        assert_ne!(s.get("a", &[2, 1]), 42.0);
        s.set("a", &[-3, 0], 7.0); // negative subscripts are fine
        assert_eq!(s.get("a", &[-3, 0]), 7.0);
        assert_eq!(s.written_len(), 2);
    }

    #[test]
    fn diff_detects_mismatches() {
        let mut a = ArrayStore::new();
        let mut b = ArrayStore::new();
        a.set("x", &[1], 1.0);
        b.set("x", &[1], 1.0);
        assert!(a.diff(&b, 1e-9).is_empty());
        b.set("x", &[2], 5.0);
        let d = a.diff(&b, 1e-9);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, vec![2]);
        // within tolerance
        let mut c = ArrayStore::new();
        c.set("x", &[1], 1.0 + 1e-12);
        assert!(a.diff(&c, 1e-9).is_empty());
    }

    #[test]
    fn buffered_view_semantics() {
        let mut base = ArrayStore::new();
        base.set("a", &[1], 10.0);
        let mut view = BufferedView::new(&base);
        // reads fall through
        assert_eq!(view.read("a", &[1]), 10.0);
        // writes are visible to later reads through the view…
        view.write("a", &[1], 20.0);
        view.write("a", &[2], 30.0);
        assert_eq!(view.read("a", &[1]), 20.0);
        // …but do not touch the base store
        assert_eq!(base.get("a", &[1]), 10.0);
        assert_eq!(view.n_writes(), 2);
        let writes = BufferedView::into_writes(view);
        assert_eq!(writes.len(), 1, "one array was written");
        assert_eq!(writes[0].1, vec![(vec![1], 20.0), (vec![2], 30.0)]);
    }
}
