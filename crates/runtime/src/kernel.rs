//! Statement kernels: the computation behind each statement of a loop nest.
//!
//! The dependence analyser only looks at the array *references* of a
//! statement; the runtime additionally needs the statement's actual
//! computation to execute and verify schedules.  A [`Kernel`] maps a
//! statement id and its loop index values to reads and writes on a
//! [`StoreView`].
//!
//! [`RefKernel`] derives a canonical kernel directly from the references of
//! a [`Program`]: every statement computes
//! `write := f(reads..., indices)` with a fixed non-commutative combiner, so
//! any re-ordering of dependent statement instances changes the final array
//! contents — which is exactly what the schedule-verification tests rely on.

use crate::array::StoreView;
use rcp_loopir::Program;
use std::collections::BTreeMap;

/// The computation of a program's statements.
pub trait Kernel: Sync {
    /// Executes statement `stmt_id` at the given loop index values against
    /// the store view.
    fn execute(&self, stmt_id: usize, indices: &[i64], store: &mut dyn StoreView);
}

/// A kernel defined by a plain function or closure.
pub struct FnKernel<F>(pub F);

impl<F> Kernel for FnKernel<F>
where
    F: Fn(usize, &[i64], &mut dyn StoreView) + Sync,
{
    fn execute(&self, stmt_id: usize, indices: &[i64], store: &mut dyn StoreView) {
        (self.0)(stmt_id, indices, store)
    }
}

/// The canonical kernel derived from a program's array references.
///
/// For every statement, all read references are evaluated, combined with a
/// non-commutative, order-sensitive function of the loop indices, and the
/// result is stored to every write reference.  Statements without writes
/// are no-ops (they still perform their reads).
pub struct RefKernel {
    /// For each statement id: (writes, reads) as `(array, access)` pairs
    /// where `access` maps loop indices to an element index.
    stmts: BTreeMap<usize, StatementAccesses>,
}

struct StatementAccesses {
    writes: Vec<(String, rcp_loopir::AccessMap)>,
    reads: Vec<(String, rcp_loopir::AccessMap)>,
}

impl RefKernel {
    /// Builds the canonical kernel of a program.
    pub fn new(program: &Program) -> Self {
        let mut stmts = BTreeMap::new();
        for info in program.statements() {
            let mut writes = Vec::new();
            let mut reads = Vec::new();
            for r in &info.stmt.refs {
                let access = program.loop_access(&info, r);
                if r.is_write() {
                    writes.push((r.array.clone(), access));
                } else {
                    reads.push((r.array.clone(), access));
                }
            }
            stmts.insert(info.id, StatementAccesses { writes, reads });
        }
        RefKernel { stmts }
    }
}

impl Kernel for RefKernel {
    // Panic-hygiene allow: schedules executed against a `RefKernel` are
    // built from the same program, so every statement id is present.
    #[allow(clippy::expect_used)]
    fn execute(&self, stmt_id: usize, indices: &[i64], store: &mut dyn StoreView) {
        let accesses = self.stmts.get(&stmt_id).expect("unknown statement id");
        // Combine the read values with an order-sensitive function so that
        // any violation of a flow/anti dependence changes the result.
        let mut acc = 0.5;
        for (k, (array, access)) in accesses.reads.iter().enumerate() {
            let idx = access.apply(indices);
            let v = store.read(array, &idx);
            acc = acc * 0.75 + v * (1.0 + 0.1 * (k as f64 + 1.0));
        }
        let index_term: f64 = indices
            .iter()
            .enumerate()
            .map(|(k, &x)| (x as f64) * 0.001 * (k as f64 + 1.0))
            .sum();
        let value = acc + index_term + 0.25;
        for (array, access) in &accesses.writes {
            let idx = access.apply(indices);
            store.write(array, &idx, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayStore;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, stmt};
    use rcp_loopir::ArrayRef;

    fn figure2() -> Program {
        Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        )
    }

    #[test]
    fn ref_kernel_reads_and_writes_the_declared_elements() {
        let p = figure2();
        let kernel = RefKernel::new(&p);
        let mut store = ArrayStore::new();
        // statement at I=6 writes a(12) from a(15)
        store.set("a", &[15], 3.0);
        kernel.execute(0, &[6], &mut store);
        let v = store.get("a", &[12]);
        assert_ne!(
            v,
            ArrayStore::new().get("a", &[12]),
            "a(12) must have been written"
        );
        // changing the read input changes the written value
        let mut store2 = ArrayStore::new();
        store2.set("a", &[15], 4.0);
        kernel.execute(0, &[6], &mut store2);
        assert_ne!(store.get("a", &[12]), store2.get("a", &[12]));
    }

    #[test]
    fn execution_order_matters_for_dependent_instances() {
        // a(2I) = a(21-I): iterations 6 (writes a(12)) and 9 (reads a(12) and
        // writes a(18)... actually reads a(12)) — executing 6 then 9 differs
        // from 9 then 6.
        let p = figure2();
        let kernel = RefKernel::new(&p);
        let mut fwd = ArrayStore::new();
        kernel.execute(0, &[6], &mut fwd);
        kernel.execute(0, &[9], &mut fwd);
        let mut rev = ArrayStore::new();
        kernel.execute(0, &[9], &mut rev);
        kernel.execute(0, &[6], &mut rev);
        assert!(
            !fwd.diff(&rev, 1e-12).is_empty(),
            "order must be observable"
        );
    }

    #[test]
    fn fn_kernel_wraps_closures() {
        let k = FnKernel(|_s: usize, idx: &[i64], store: &mut dyn StoreView| {
            store.write("out", idx, idx[0] as f64 * 2.0);
        });
        let mut store = ArrayStore::new();
        k.execute(0, &[21], &mut store);
        assert_eq!(store.get("out", &[21]), 42.0);
    }
}
