//! The analytic cost model used to reproduce the speedup curves of Figure 3.
//!
//! The paper's evaluation ran on a 4-CPU Itanium SMP; this reproduction runs
//! inside a container with a single CPU, so wall-clock measurements cannot
//! show real multi-thread speedups.  Instead, the benchmarks measure the
//! *per-iteration cost* of each workload on the real machine (sequential
//! execution), measure the scheduling overheads once, and feed both into
//! this model, which accounts for exactly the effects the paper discusses:
//!
//! * the work of a DOALL phase is divided over `p` threads and closed with a
//!   barrier (`c$omp end parallel` in the paper's code),
//! * a chain phase is limited by its longest chain and by how well chains
//!   load-balance over the threads (LPT assignment),
//! * DOACROSS loops pay one point-to-point synchronisation per delayed
//!   iteration (Chen & Yew's scheme, compared against in Example 3),
//! * per-phase overheads penalise schemes with many small phases (this is
//!   why PDM catches up with REC at 4 threads on Example 4, as the paper
//!   observes).

use rcp_codegen::{Phase, Schedule};

/// Cost-model parameters, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost of executing one statement instance.
    pub instance_cost_ns: f64,
    /// Cost of one barrier / parallel-region fork-join.
    pub barrier_cost_ns: f64,
    /// Scheduling overhead per work item (loop bookkeeping).
    pub item_overhead_ns: f64,
    /// Cost of one point-to-point synchronisation (DOACROSS P/V pair).
    pub sync_cost_ns: f64,
    /// One-time cost of spawning a pool worker thread (paid per thread per
    /// `ParallelExecutor::execute`, since the pool lives for one schedule).
    pub thread_spawn_cost_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Conservative defaults in the right orders of magnitude for a
        // compiled loop body; the benchmarks overwrite `instance_cost_ns`
        // with a measured value.
        CostModel {
            instance_cost_ns: 50.0,
            barrier_cost_ns: 2_000.0,
            item_overhead_ns: 10.0,
            sync_cost_ns: 200.0,
            thread_spawn_cost_ns: 60_000.0,
        }
    }
}

impl CostModel {
    /// A model whose per-instance cost was measured by timing `n_instances`
    /// statement instances over `elapsed_ns` nanoseconds of sequential
    /// execution.
    pub fn calibrated(elapsed_ns: f64, n_instances: usize) -> Self {
        CostModel {
            instance_cost_ns: (elapsed_ns / n_instances.max(1) as f64).max(1.0),
            ..CostModel::default()
        }
    }

    /// Time of the original sequential loop (no parallel overheads).
    pub fn sequential_time_ns(&self, schedule: &Schedule) -> f64 {
        schedule.n_instances() as f64 * self.instance_cost_ns
    }

    /// Modelled execution time of one phase on `threads` workers.
    pub fn phase_time_ns(&self, phase: &Phase, threads: usize) -> f64 {
        let threads = threads.max(1);
        let unit_costs: Vec<f64> = match phase {
            Phase::Doall(items) => items
                .iter()
                .map(|i| i.len() as f64 * self.instance_cost_ns + self.item_overhead_ns)
                .collect(),
            Phase::ChainSet(chains) => chains
                .iter()
                .map(|c| {
                    c.iter().map(|i| i.len() as f64).sum::<f64>() * self.instance_cost_ns
                        + c.len() as f64 * self.item_overhead_ns
                })
                .collect(),
        };
        makespan(&unit_costs, threads) + self.barrier_cost_ns
    }

    /// Modelled execution time of a whole schedule on `threads` workers.
    pub fn schedule_time_ns(&self, schedule: &Schedule, threads: usize) -> f64 {
        schedule
            .phases
            .iter()
            .map(|p| self.phase_time_ns(p, threads))
            .sum()
    }

    /// Modelled speedup of a schedule over the original sequential loop
    /// with the same total work.
    pub fn speedup(&self, schedule: &Schedule, threads: usize) -> f64 {
        self.sequential_time_ns(schedule) / self.schedule_time_ns(schedule, threads)
    }

    /// One-time pool start-up cost for an execution with `threads` workers.
    pub fn pool_startup_ns(&self, threads: usize) -> f64 {
        threads as f64 * self.thread_spawn_cost_ns
    }

    /// A fast `O(units)` estimate of [`Self::phase_time_ns`] using the
    /// makespan lower bound `max(total work / threads, longest unit)`
    /// instead of the LPT assignment (which sorts every unit and is too
    /// expensive to run on each `execute` call of a large schedule).
    pub fn phase_time_estimate_ns(&self, phase: &Phase, threads: usize) -> f64 {
        let threads = threads.max(1) as f64;
        let mut total = 0.0f64;
        let mut longest = 0.0f64;
        let mut unit = |instances: f64, items: f64| {
            let cost = instances * self.instance_cost_ns + items * self.item_overhead_ns;
            total += cost;
            longest = longest.max(cost);
        };
        match phase {
            Phase::Doall(items) => {
                for i in items {
                    unit(i.len() as f64, 1.0);
                }
            }
            Phase::ChainSet(chains) => {
                for c in chains {
                    unit(
                        c.iter().map(|i| i.len() as f64).sum::<f64>(),
                        c.len() as f64,
                    );
                }
            }
        }
        (total / threads).max(longest) + self.barrier_cost_ns
    }

    /// Whether running `schedule` on a `threads`-worker pool is modelled to
    /// beat inline sequential execution, given that the hardware offers
    /// `available` threads.
    ///
    /// The requested thread count is capped at `available` first — threads
    /// beyond the hardware only add oversubscription, never speedup — and
    /// the pool pays its start-up cost plus a barrier per phase, which is
    /// exactly why small schedules are better off inline (the measured
    /// `ex1`–`ex4` speedups below 1 that motivated this check).
    pub fn parallel_pays_off(&self, schedule: &Schedule, threads: usize, available: usize) -> bool {
        let effective = threads.min(available.max(1));
        if effective <= 1 {
            return false;
        }
        let parallel: f64 = schedule
            .phases
            .iter()
            .map(|p| self.phase_time_estimate_ns(p, effective))
            .sum::<f64>()
            + self.pool_startup_ns(effective);
        parallel < self.sequential_time_ns(schedule)
    }

    /// Modelled execution time of a DOACROSS loop: `n_outer` outer
    /// iterations of `inner_size` instances each, where outer iteration `k`
    /// may only start after iteration `k − 1` has advanced by `delay`
    /// instances (Chen & Yew's index synchronisation).
    ///
    /// Two limits govern the pipelined execution and the slower one wins:
    /// the *work limit* (total work divided over the threads) and the
    /// *chain limit* (consecutive outer iterations cannot start closer than
    /// one delay apart, regardless of how many processors are available).
    pub fn doacross_time_ns(
        &self,
        n_outer: usize,
        inner_size: usize,
        delay: usize,
        threads: usize,
    ) -> f64 {
        let threads = threads.max(1);
        let inner_cost = inner_size as f64 * (self.instance_cost_ns + self.item_overhead_ns);
        let delay_cost = (delay.min(inner_size)) as f64 * self.instance_cost_ns + self.sync_cost_ns;
        if threads == 1 || n_outer == 0 {
            return n_outer as f64 * inner_cost + self.barrier_cost_ns;
        }
        let rounds = n_outer.div_ceil(threads);
        let work_limit = rounds as f64 * inner_cost;
        let chain_limit = (n_outer - 1) as f64 * delay_cost;
        work_limit.max(chain_limit) + inner_cost + self.barrier_cost_ns
    }
}

/// Longest-processing-time-first makespan of independent unit costs on
/// `workers` identical workers.
// Panic-hygiene allow: costs are finite sums of finite model constants, so
// `partial_cmp` never sees a NaN, and `loads` is non-empty by construction.
#[allow(clippy::unwrap_used)]
pub fn makespan(costs: &[f64], workers: usize) -> f64 {
    let workers = workers.max(1);
    if costs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = costs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut loads = vec![0.0f64; workers];
    for c in sorted {
        // assign to the least-loaded worker
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        loads[idx] += c;
    }
    loads.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_codegen::WorkItem;

    fn doall(n: usize) -> Phase {
        Phase::Doall(
            (0..n)
                .map(|i| WorkItem::single(0, vec![i as i64]))
                .collect(),
        )
    }

    fn chains(lens: &[usize]) -> Phase {
        Phase::ChainSet(
            lens.iter()
                .map(|&l| {
                    (0..l)
                        .map(|i| WorkItem::single(0, vec![i as i64]))
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn makespan_basics() {
        assert_eq!(makespan(&[], 4), 0.0);
        assert_eq!(makespan(&[5.0], 4), 5.0);
        assert_eq!(makespan(&[1.0; 8], 4), 2.0);
        // LPT is a heuristic: {5, 4, 3, 3, 3} on 2 workers gives 10
        // (5+3+... assignment), within the 4/3-optimal guarantee of the
        // optimum 9.
        assert_eq!(makespan(&[5.0, 4.0, 3.0, 3.0, 3.0], 2), 10.0);
        // one worker: sum
        assert_eq!(makespan(&[1.0, 2.0, 3.0], 1), 6.0);
    }

    #[test]
    fn doall_scales_with_threads() {
        let model = CostModel {
            barrier_cost_ns: 0.0,
            item_overhead_ns: 0.0,
            ..Default::default()
        };
        let phase = doall(100);
        let t1 = model.phase_time_ns(&phase, 1);
        let t4 = model.phase_time_ns(&phase, 4);
        assert!(
            (t1 / t4 - 4.0).abs() < 1e-9,
            "ideal DOALL speedup should be 4, got {}",
            t1 / t4
        );
    }

    #[test]
    fn chain_phase_is_limited_by_longest_chain() {
        let model = CostModel {
            barrier_cost_ns: 0.0,
            item_overhead_ns: 0.0,
            ..Default::default()
        };
        let phase = chains(&[10, 2, 2, 2]);
        // with many threads the longest chain dominates
        let t = model.phase_time_ns(&phase, 8);
        assert_eq!(t, 10.0 * model.instance_cost_ns);
    }

    #[test]
    fn speedup_saturates_with_overheads() {
        let model = CostModel::default();
        let schedule = Schedule {
            name: "s".into(),
            phases: vec![doall(1000)],
        };
        let s1 = model.speedup(&schedule, 1);
        let s2 = model.speedup(&schedule, 2);
        let s4 = model.speedup(&schedule, 4);
        assert!(s1 <= 1.0 + 1e-9);
        assert!(s2 > s1);
        assert!(s4 > s2);
        assert!(s4 <= 4.0);
    }

    #[test]
    fn many_phases_penalise_speedup() {
        let model = CostModel::default();
        let one_phase = Schedule {
            name: "one".into(),
            phases: vec![doall(1000)],
        };
        let many_phases = Schedule {
            name: "many".into(),
            phases: (0..100).map(|_| doall(10)).collect(),
        };
        assert!(model.speedup(&one_phase, 4) > model.speedup(&many_phases, 4));
    }

    #[test]
    fn doacross_beats_sequential_but_not_doall() {
        let model = CostModel::default();
        let n_outer = 100;
        let inner = 50;
        let doacross4 = model.doacross_time_ns(n_outer, inner, 5, 4);
        let doacross1 = model.doacross_time_ns(n_outer, inner, 5, 1);
        assert!(
            doacross4 < doacross1,
            "pipelining must help over one thread"
        );
        let doall_phase = Schedule {
            name: "doall".into(),
            phases: vec![doall(n_outer * inner)],
        };
        assert!(
            model.schedule_time_ns(&doall_phase, 4) < doacross4,
            "a fully parallel DOALL must beat the synchronised pipeline"
        );
    }

    #[test]
    fn doacross_chain_limit_dominates_for_long_delays() {
        let model = CostModel::default();
        // delay almost as long as the whole inner iteration: adding threads
        // beyond 2 cannot help because consecutive outer iterations are
        // serialised by the synchronisation chain.
        let t2 = model.doacross_time_ns(100, 50, 45, 2);
        let t8 = model.doacross_time_ns(100, 50, 45, 8);
        assert!(
            (t8 / t2 - 1.0).abs() < 0.25,
            "t2={t2} t8={t8} should be close"
        );
    }

    #[test]
    fn fallback_decision_reflects_work_and_hardware() {
        let model = CostModel::default();
        let small = Schedule {
            name: "small".into(),
            phases: vec![doall(10)],
        };
        let big = Schedule {
            name: "big".into(),
            phases: vec![doall(200_000)],
        };
        // A tiny schedule never amortises pool start-up.
        assert!(!model.parallel_pays_off(&small, 4, 4));
        // A big DOALL does, when the hardware is really there…
        assert!(model.parallel_pays_off(&big, 4, 4));
        // …but not on a single-core machine, at any requested width.
        assert!(!model.parallel_pays_off(&big, 4, 1));
        assert!(!model.parallel_pays_off(&big, 1, 8));
    }

    #[test]
    fn calibration_uses_measured_cost() {
        let model = CostModel::calibrated(1_000_000.0, 1000);
        assert_eq!(model.instance_cost_ns, 1000.0);
        let model = CostModel::calibrated(5.0, 0);
        assert!(model.instance_cost_ns >= 1.0);
    }
}
