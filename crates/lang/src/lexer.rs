//! Line-oriented lexer for the `.loop` language.
//!
//! The grammar is line-structured (one construct per line, like the
//! Fortran sources it mimics), so the lexer tokenizes one line at a time
//! and records the 1-based column of every token for diagnostics.

use crate::parser::{ParseError, SourcePos};
use std::fmt;

/// A lexical token of the `.loop` language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// An identifier (loop index, parameter, array or statement name).
    Ident(String),
    /// A non-negative integer literal (signs are handled by the parser).
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `...` — the empty reference list of a statement side.
    Ellipsis,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(name) => write!(f, "identifier `{name}`"),
            Tok::Int(k) => write!(f, "integer `{k}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Ellipsis => write!(f, "`...`"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Position of the token's first character.
    pub pos: SourcePos,
}

/// Strips a trailing `!` comment (the language has no string literals, so
/// the first `!` always starts a comment).
pub fn strip_comment(line: &str) -> &str {
    match line.find('!') {
        Some(k) => &line[..k],
        None => line,
    }
}

/// Tokenizes one line (comment already stripped).  `line_no` is 1-based.
pub fn lex_line(line: &str, line_no: usize) -> Result<Vec<Token>, ParseError> {
    let chars: Vec<char> = line.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let col = i + 1;
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let pos = SourcePos { line: line_no, col };
        let single = |tok: Tok| Token {
            tok,
            pos: SourcePos { line: line_no, col },
        };
        match c {
            '(' => tokens.push(single(Tok::LParen)),
            ')' => tokens.push(single(Tok::RParen)),
            ',' => tokens.push(single(Tok::Comma)),
            ':' => tokens.push(single(Tok::Colon)),
            '=' => tokens.push(single(Tok::Eq)),
            '+' => tokens.push(single(Tok::Plus)),
            '-' => tokens.push(single(Tok::Minus)),
            '*' => tokens.push(single(Tok::Star)),
            '.' => {
                if chars[i..].starts_with(&['.', '.', '.']) {
                    tokens.push(single(Tok::Ellipsis));
                    i += 3;
                    continue;
                }
                return Err(ParseError::new(pos, "unexpected character `.`".into()));
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value: i64 = text.parse().map_err(|_| {
                    ParseError::new(pos, format!("integer literal `{text}` out of range"))
                })?;
                tokens.push(Token {
                    tok: Tok::Int(value),
                    pos,
                });
                continue;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    pos,
                });
                continue;
            }
            _ => {
                return Err(ParseError::new(pos, format!("unexpected character `{c}`")));
            }
        }
        i += 1;
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_statement_line() {
        let toks = lex_line("    S: a(3*I1 + 1) = a(I1 + 3)", 4).unwrap();
        assert_eq!(toks[0].tok, Tok::Ident("S".into()));
        assert_eq!(toks[0].pos, SourcePos { line: 4, col: 5 });
        assert_eq!(toks[1].tok, Tok::Colon);
        assert!(toks.iter().any(|t| t.tok == Tok::Int(3)));
        assert!(toks.iter().any(|t| t.tok == Tok::Star));
    }

    #[test]
    fn ellipsis_and_comments() {
        assert_eq!(
            strip_comment("DO I = 1, N ! the outer loop"),
            "DO I = 1, N "
        );
        let toks = lex_line("S: ... = a(I)", 1).unwrap();
        assert_eq!(toks[2].tok, Tok::Ellipsis);
    }

    #[test]
    fn rejects_stray_characters() {
        let err = lex_line("DO I = 1, N; S", 7).unwrap_err();
        assert_eq!(err.pos, SourcePos { line: 7, col: 12 });
        assert!(err.message.contains("unexpected character"));
        let err = lex_line("S: a(I.5)", 2).unwrap_err();
        assert!(err.message.contains("`.`"));
    }

    #[test]
    fn rejects_overflowing_integers() {
        let err = lex_line("S: a(99999999999999999999)", 1).unwrap_err();
        assert!(err.message.contains("out of range"));
    }
}
