//! The canonical pretty-printer: [`Program`] → `.loop` source.
//!
//! The printer emits the exact form the parser's round-trip guarantee is
//! stated over: upper-case keywords, two-space indentation, subscripts
//! rendered by [`rcp_loopir::expr::LinExpr`]'s `Display` (`3*I1 + 1`), one
//! construct per line, `...` for an empty statement side, `max(…)`/`min(…)`
//! only when a loop has several lower/upper bounds.
//!
//! The round-trip guarantee is **total**: for *every* program,
//! `parse(pretty(p)) == p.canonicalized()` — the printer renders each
//! statement in canonical reference order (writes first, relative order
//! preserved; see [`rcp_loopir::Statement::canonicalized`], a pure
//! normalisation since reference order inside a statement carries no
//! semantics), and the parser produces canonical programs by
//! construction.  For programs already in canonical order this is the
//! familiar `parse(pretty(p)) == p`, and for canonical sources
//! `pretty(parse(s)) == s`.

use rcp_loopir::expr::LinExpr;
use rcp_loopir::program::{Node, Program, Statement};
use std::fmt::Write as _;

/// Renders a program as canonical `.loop` source.
pub fn pretty(program: &Program) -> String {
    let mut out = format!("PROGRAM {}\n", program.name);
    if !program.params.is_empty() {
        let _ = writeln!(out, "PARAM {}", program.params.join(", "));
    }
    render_nodes(&program.body, 0, &mut out);
    out.push_str("END\n");
    out
}

fn render_bound(exprs: &[LinExpr], combiner: &str) -> String {
    if exprs.len() == 1 {
        exprs[0].to_string()
    } else {
        let parts: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
        format!("{combiner}({})", parts.join(", "))
    }
}

fn render_side(refs: Vec<&rcp_loopir::ArrayRef>) -> String {
    if refs.is_empty() {
        "...".to_string()
    } else {
        refs.iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

fn render_statement(stmt: &Statement) -> String {
    format!(
        "{}: {} = {}",
        stmt.name,
        render_side(stmt.writes().collect()),
        render_side(stmt.reads().collect())
    )
}

fn render_nodes(nodes: &[Node], indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for node in nodes {
        match node {
            Node::Loop(l) => {
                let _ = writeln!(
                    out,
                    "{pad}DO {} = {}, {}",
                    l.index,
                    render_bound(&l.lower, "max"),
                    render_bound(&l.upper, "min")
                );
                render_nodes(&l.body, indent + 1, out);
                let _ = writeln!(out, "{pad}ENDDO");
            }
            Node::Stmt(s) => {
                let _ = writeln!(out, "{pad}{}", render_statement(s));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, loop_minmax, stmt};
    use rcp_loopir::ArrayRef;

    #[test]
    fn canonical_form_round_trips() {
        let p = Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        );
        let text = pretty(&p);
        assert_eq!(
            text,
            "PROGRAM example1\n\
             PARAM N1, N2\n\
             DO I1 = 1, N1\n\
             \x20 DO I2 = 1, N2\n\
             \x20   S: a(3*I1 + 1, 2*I1 + I2 - 1) = a(I1 + 3, I2 + 1)\n\
             \x20 ENDDO\n\
             ENDDO\n\
             END\n"
        );
        assert_eq!(parse_program(&text).unwrap(), p);
        // A canonical source is a fixed point of pretty ∘ parse.
        assert_eq!(pretty(&parse_program(&text).unwrap()), text);
    }

    #[test]
    fn minmax_and_empty_sides_round_trip() {
        let p = Program::new(
            "bands",
            &["M", "N"],
            vec![loop_minmax(
                "I",
                vec![-v("M"), c(0)],
                vec![c(-1), v("N")],
                vec![
                    stmt("S1", vec![ArrayRef::read("a", vec![v("I")])]),
                    stmt("S2", vec![ArrayRef::write("a", vec![v("I") + c(1)])]),
                    stmt("S3", vec![]),
                ],
            )],
        );
        let text = pretty(&p);
        assert!(text.contains("DO I = max(-M, 0), min(-1, N)"));
        assert!(text.contains("S1: ... = a(I)"));
        assert!(text.contains("S2: a(I + 1) = ..."));
        assert!(text.contains("S3: ... = ..."));
        assert_eq!(parse_program(&text).unwrap(), p);
    }

    #[test]
    fn reads_first_statements_round_trip_to_their_canonical_form() {
        // The figure-2 statement with the read listed *before* the write:
        // printing is total, and the round trip lands on the canonical
        // (writes-first) program.
        let p = Program::new(
            "reads-first",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                        ArrayRef::write("a", vec![v("I") * 2]),
                    ],
                )],
            )],
        );
        let text = pretty(&p);
        assert!(text.contains("S: a(2*I) = a(-I + 21)"));
        let reparsed = parse_program(&text).unwrap();
        assert_ne!(reparsed, p, "the ref order was normalised");
        assert_eq!(reparsed, p.canonicalized());
        // Canonicalisation is idempotent and pretty-stable.
        assert_eq!(p.canonicalized().canonicalized(), p.canonicalized());
        assert_eq!(pretty(&p.canonicalized()), text);
    }

    #[test]
    fn params_line_is_omitted_when_empty() {
        let p = Program::new(
            "figure2",
            &[],
            vec![loop_(
                "I",
                c(1),
                c(20),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") * 2]),
                        ArrayRef::read("a", vec![c(21) - v("I")]),
                    ],
                )],
            )],
        );
        let text = pretty(&p);
        assert!(!text.contains("PARAM"));
        assert!(text.contains("S: a(2*I) = a(-I + 21)"));
        assert_eq!(parse_program(&text).unwrap(), p);
    }
}
