//! Recursive-descent parser: `.loop` source → [`rcp_loopir::Program`].
//!
//! The language is line-structured; every line is one construct:
//!
//! * `PROGRAM <name>` — header (the name runs to the end of the line, so
//!   library names like `corpus-17` survive a round trip),
//! * `PARAM <ident>, <ident>, …` — symbolic parameter declarations (their
//!   order is the [`Program::bind_params`] order),
//! * `DO <index> = <lower>, <upper>` / `ENDDO` — a unit-stride loop; a
//!   lower bound may be `max(e, …)` and an upper bound `min(e, …)`,
//! * `<name>: <writes> = <reads>` — a statement; each side is `...` or a
//!   comma-separated list of affine references `array(e, e, …)`,
//! * `END` — terminator.
//!
//! Bounds and subscripts are affine expressions over the enclosing loop
//! indices and the declared parameters; anything else (unknown variables,
//! `I*J` products, misplaced `min`/`max`) is rejected with a precise
//! line/column diagnostic.

use crate::lexer::{lex_line, strip_comment, Tok, Token};
use rcp_loopir::expr::LinExpr;
use rcp_loopir::program::{ArrayRef, Loop, Node, Program, Statement};
use std::fmt;

/// A 1-based line/column source position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SourcePos {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

/// A parse failure with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Where the failure was detected.
    pub pos: SourcePos,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates an error.
    pub fn new(pos: SourcePos, message: String) -> Self {
        ParseError { pos, message }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.pos.line, self.pos.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// The reserved words of the language (matched case-insensitively).
fn as_keyword(tok: &Tok) -> Option<&'static str> {
    if let Tok::Ident(s) = tok {
        match s.to_ascii_uppercase().as_str() {
            "PROGRAM" => Some("PROGRAM"),
            "PARAM" => Some("PARAM"),
            "DO" => Some("DO"),
            "ENDDO" => Some("ENDDO"),
            "END" => Some("END"),
            _ => None,
        }
    } else {
        None
    }
}

/// Variables an expression may mention at some point of the program.
struct Scope<'a> {
    params: &'a [String],
    indices: &'a [String],
}

impl Scope<'_> {
    fn check(&self, name: &str, pos: SourcePos) -> Result<(), ParseError> {
        if self.params.iter().any(|p| p == name) || self.indices.iter().any(|i| i == name) {
            Ok(())
        } else {
            Err(ParseError::new(
                pos,
                format!(
                    "unknown variable `{name}`: not a declared PARAM or an enclosing loop index"
                ),
            ))
        }
    }
}

/// A cursor over one line's tokens.
struct Cursor<'a> {
    tokens: &'a [Token],
    k: usize,
    line: usize,
    eol_col: usize,
}

impl<'a> Cursor<'a> {
    fn new(tokens: &'a [Token], line: usize, eol_col: usize) -> Self {
        Cursor {
            tokens,
            k: 0,
            line,
            eol_col,
        }
    }

    fn peek(&self) -> Option<&'a Tok> {
        self.tokens.get(self.k).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&'a Tok> {
        self.tokens.get(self.k + 1).map(|t| &t.tok)
    }

    fn pos(&self) -> SourcePos {
        match self.tokens.get(self.k) {
            Some(t) => t.pos,
            None => SourcePos {
                line: self.line,
                col: self.eol_col,
            },
        }
    }

    fn advance(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.k);
        if t.is_some() {
            self.k += 1;
        }
        t
    }

    fn err(&self, message: String) -> ParseError {
        ParseError::new(self.pos(), message)
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.k += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {what}, found {t}"))),
            None => Err(self.err(format!("expected {what}, found end of line"))),
        }
    }

    // Panic-hygiene allow: `advance().expect("peeked")` runs only inside a
    // match arm where `peek()` just returned `Some` — a lexer invariant.
    #[allow(clippy::expect_used)]
    fn expect_ident(&mut self, what: &str) -> Result<(String, SourcePos), ParseError> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                let t = self.advance().expect("peeked");
                if let Some(kw) = as_keyword(&t.tok) {
                    return Err(ParseError::new(
                        t.pos,
                        format!("keyword `{kw}` cannot be used as {what}"),
                    ));
                }
                match &t.tok {
                    Tok::Ident(name) => Ok((name.clone(), t.pos)),
                    _ => unreachable!(),
                }
            }
            Some(t) => Err(self.err(format!("expected {what}, found {t}"))),
            None => Err(self.err(format!("expected {what}, found end of line"))),
        }
    }

    fn expect_end(&mut self, after: &str) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err(format!("unexpected {t} after {after}"))),
        }
    }

    /// One affine term: `k`, `k*v`, `v*k` or `v` (with `sign` applied).
    // Panic-hygiene allow: `advance().expect("peeked")` runs only inside a
    // match arm where `peek()` just returned `Some` — a lexer invariant.
    #[allow(clippy::expect_used)]
    fn parse_term(&mut self, sign: i64, scope: &Scope) -> Result<LinExpr, ParseError> {
        match self.peek() {
            Some(Tok::Int(_)) => {
                let t = self.advance().expect("peeked");
                let k = match t.tok {
                    Tok::Int(k) => k,
                    _ => unreachable!(),
                };
                if self.peek() == Some(&Tok::Star) {
                    self.k += 1;
                    let (name, pos) = self.expect_ident("a variable after `*`")?;
                    scope.check(&name, pos)?;
                    Ok(LinExpr::term(sign * k, &name))
                } else {
                    Ok(LinExpr::c(sign * k))
                }
            }
            Some(Tok::Ident(_)) => {
                let (name, pos) = self.expect_ident("a variable")?;
                scope.check(&name, pos)?;
                if self.peek() == Some(&Tok::Star) {
                    self.k += 1;
                    match self.peek() {
                        Some(Tok::Int(_)) => {
                            let t = self.advance().expect("peeked");
                            let k = match t.tok {
                                Tok::Int(k) => k,
                                _ => unreachable!(),
                            };
                            Ok(LinExpr::term(sign * k, &name))
                        }
                        _ => Err(self.err(
                            "non-affine term: expected an integer coefficient after `*`".into(),
                        )),
                    }
                } else {
                    Ok(LinExpr::term(sign, &name))
                }
            }
            Some(t) => Err(self.err(format!("expected an affine expression, found {t}"))),
            None => Err(self.err("expected an affine expression, found end of line".into())),
        }
    }

    /// An affine expression: `[-] term ((+|-) term)*`.
    fn parse_expr(&mut self, scope: &Scope) -> Result<LinExpr, ParseError> {
        let mut sign = 1i64;
        match self.peek() {
            Some(Tok::Minus) => {
                self.k += 1;
                sign = -1;
            }
            Some(Tok::Plus) => {
                self.k += 1;
            }
            _ => {}
        }
        let mut acc = self.parse_term(sign, scope)?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.k += 1;
                    acc = acc + self.parse_term(1, scope)?;
                }
                Some(Tok::Minus) => {
                    self.k += 1;
                    acc = acc + self.parse_term(-1, scope)?;
                }
                _ => break,
            }
        }
        // Cancelled variables (`I - I`) must not survive as zero-coefficient
        // entries: `LinExpr` equality is structural.
        acc.terms.retain(|_, c| *c != 0);
        Ok(acc)
    }

    /// A loop bound: a single expression, or `max(e, …)` (lower) /
    /// `min(e, …)` (upper).
    fn parse_bound(&mut self, scope: &Scope, lower: bool) -> Result<Vec<LinExpr>, ParseError> {
        if let Some(Tok::Ident(name)) = self.peek() {
            let fold = name.to_ascii_lowercase();
            if (fold == "max" || fold == "min") && self.peek2() == Some(&Tok::LParen) {
                match (fold.as_str(), lower) {
                    ("max", false) => {
                        return Err(self.err("`max(...)` is only valid as a lower bound".into()))
                    }
                    ("min", true) => {
                        return Err(self.err("`min(...)` is only valid as an upper bound".into()))
                    }
                    _ => {}
                }
                self.k += 2; // the name and `(`
                let mut out = vec![self.parse_expr(scope)?];
                while self.peek() == Some(&Tok::Comma) {
                    self.k += 1;
                    out.push(self.parse_expr(scope)?);
                }
                self.expect(&Tok::RParen, "`)`")?;
                return Ok(out);
            }
        }
        Ok(vec![self.parse_expr(scope)?])
    }

    /// An array reference `array(e, e, …)`.
    fn parse_ref(&mut self, scope: &Scope, write: bool) -> Result<ArrayRef, ParseError> {
        let (array, _) = self.expect_ident("an array name")?;
        self.expect(&Tok::LParen, "`(` after the array name")?;
        if self.peek() == Some(&Tok::RParen) {
            return Err(self.err("expected a subscript expression".into()));
        }
        let mut subs = vec![self.parse_expr(scope)?];
        while self.peek() == Some(&Tok::Comma) {
            self.k += 1;
            subs.push(self.parse_expr(scope)?);
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(if write {
            ArrayRef::write(&array, subs)
        } else {
            ArrayRef::read(&array, subs)
        })
    }

    /// One side of a statement: `...` or a reference list.
    fn parse_refs(&mut self, scope: &Scope, write: bool) -> Result<Vec<ArrayRef>, ParseError> {
        if self.peek() == Some(&Tok::Ellipsis) {
            self.k += 1;
            return Ok(Vec::new());
        }
        let mut out = vec![self.parse_ref(scope, write)?];
        while self.peek() == Some(&Tok::Comma) {
            self.k += 1;
            out.push(self.parse_ref(scope, write)?);
        }
        Ok(out)
    }
}

/// Parses a whole `.loop` source into a [`Program`].
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut name: Option<String> = None;
    let mut params: Vec<String> = Vec::new();
    let mut top: Vec<Node> = Vec::new();
    let mut stack: Vec<Loop> = Vec::new();
    let mut ended = false;
    let mut body_started = false;
    let mut last_line = 0;

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        last_line = line_no;
        let text = strip_comment(raw);
        if text.trim().is_empty() || raw.trim_start().starts_with('#') {
            continue;
        }
        let first_col = text.len() - text.trim_start().len() + 1;
        if ended {
            return Err(ParseError::new(
                SourcePos {
                    line: line_no,
                    col: first_col,
                },
                "content after END".into(),
            ));
        }

        // The header line is handled textually so program names may contain
        // characters outside the identifier charset (`corpus-17`, …).
        if name.is_none() {
            let trimmed = text.trim_start();
            // `get` keeps the slice char-boundary-safe: a multibyte
            // character straddling byte 7 is a malformed header, not a
            // panic.  A successful `get(..7)` makes `trimmed[7..]` safe.
            let is_header = trimmed
                .get(..7)
                .is_some_and(|head| head.eq_ignore_ascii_case("PROGRAM"));
            let header_rest = is_header
                .then(|| &trimmed[7..])
                .filter(|rest| rest.is_empty() || rest.starts_with(char::is_whitespace));
            match header_rest {
                Some(rest) => {
                    let program_name = rest.trim();
                    if program_name.is_empty() {
                        return Err(ParseError::new(
                            SourcePos {
                                line: line_no,
                                col: first_col + 7,
                            },
                            "expected a program name after PROGRAM".into(),
                        ));
                    }
                    name = Some(program_name.to_string());
                    continue;
                }
                None => {
                    return Err(ParseError::new(
                        SourcePos {
                            line: line_no,
                            col: first_col,
                        },
                        "expected a PROGRAM header as the first line".into(),
                    ));
                }
            }
        }

        let tokens = lex_line(text, line_no)?;
        let eol_col = text.chars().count() + 1;
        let mut cur = Cursor::new(&tokens, line_no, eol_col);
        let indices: Vec<String> = stack.iter().map(|l| l.index.clone()).collect();
        let scope = Scope {
            params: &params,
            indices: &indices,
        };

        match cur.peek().and_then(as_keyword) {
            Some("PROGRAM") => {
                return Err(cur.err("duplicate PROGRAM header".into()));
            }
            Some("PARAM") => {
                if body_started {
                    return Err(cur.err("PARAM lines must appear before the loop body".into()));
                }
                cur.k += 1;
                loop {
                    let (p, pos) = cur.expect_ident("a parameter name")?;
                    if params.contains(&p) {
                        return Err(ParseError::new(pos, format!("duplicate parameter `{p}`")));
                    }
                    params.push(p);
                    match cur.peek() {
                        Some(Tok::Comma) => cur.k += 1,
                        None => break,
                        Some(t) => {
                            return Err(cur.err(format!("expected `,` or end of line, found {t}")))
                        }
                    }
                }
            }
            Some("DO") => {
                body_started = true;
                cur.k += 1;
                let (index, pos) = cur.expect_ident("a loop index")?;
                if params.contains(&index) {
                    return Err(ParseError::new(
                        pos,
                        format!("loop index `{index}` collides with a PARAM"),
                    ));
                }
                if indices.contains(&index) {
                    return Err(ParseError::new(
                        pos,
                        format!("loop index `{index}` shadows an enclosing loop"),
                    ));
                }
                cur.expect(&Tok::Eq, "`=` after the loop index")?;
                let lower = cur.parse_bound(&scope, true)?;
                cur.expect(&Tok::Comma, "`,` between the loop bounds")?;
                let upper = cur.parse_bound(&scope, false)?;
                cur.expect_end("the loop bounds")?;
                stack.push(Loop {
                    index,
                    lower,
                    upper,
                    body: Vec::new(),
                });
            }
            Some("ENDDO") => {
                let kw_pos = cur.pos();
                cur.k += 1;
                cur.expect_end("ENDDO")?;
                match stack.pop() {
                    Some(done) => {
                        let node = Node::Loop(done);
                        match stack.last_mut() {
                            Some(parent) => parent.body.push(node),
                            None => top.push(node),
                        }
                    }
                    None => {
                        return Err(ParseError::new(
                            kw_pos,
                            "ENDDO without a matching DO".into(),
                        ))
                    }
                }
            }
            Some("END") => {
                let kw_pos = cur.pos();
                cur.k += 1;
                cur.expect_end("END")?;
                if !stack.is_empty() {
                    return Err(ParseError::new(
                        kw_pos,
                        format!(
                            "END with {} unclosed DO loop(s): missing ENDDO",
                            stack.len()
                        ),
                    ));
                }
                ended = true;
            }
            _ => {
                body_started = true;
                let (stmt_name, _) = cur.expect_ident("a statement name, DO, ENDDO or END")?;
                cur.expect(&Tok::Colon, "`:` after the statement name")?;
                let mut refs = cur.parse_refs(&scope, true)?;
                cur.expect(&Tok::Eq, "`=` between the write and read references")?;
                refs.extend(cur.parse_refs(&scope, false)?);
                cur.expect_end("the statement")?;
                let node = Node::Stmt(Statement {
                    name: stmt_name,
                    refs,
                });
                match stack.last_mut() {
                    Some(parent) => parent.body.push(node),
                    None => top.push(node),
                }
            }
        }
    }

    let eof = SourcePos {
        line: last_line + 1,
        col: 1,
    };
    let Some(name) = name else {
        return Err(ParseError::new(
            eof,
            "empty program: expected a PROGRAM header".into(),
        ));
    };
    if !ended {
        return Err(ParseError::new(eof, "missing END".into()));
    }
    Ok(Program {
        name,
        params,
        body: top,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcp_loopir::expr::{c, v};
    use rcp_loopir::program::build::{loop_, loop_minmax, stmt};

    const EXAMPLE1: &str = "\
PROGRAM example1
PARAM N1, N2
DO I1 = 1, N1
  DO I2 = 1, N2
    S: a(3*I1 + 1, 2*I1 + I2 - 1) = a(I1 + 3, I2 + 1)
  ENDDO
ENDDO
END
";

    fn example1() -> Program {
        Program::new(
            "example1",
            &["N1", "N2"],
            vec![loop_(
                "I1",
                c(1),
                v("N1"),
                vec![loop_(
                    "I2",
                    c(1),
                    v("N2"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![v("I1") * 3 + c(1), v("I1") * 2 + v("I2") - c(1)],
                            ),
                            ArrayRef::read("a", vec![v("I1") + c(3), v("I2") + c(1)]),
                        ],
                    )],
                )],
            )],
        )
    }

    #[test]
    fn parses_example1_to_the_library_program() {
        assert_eq!(parse_program(EXAMPLE1).unwrap(), example1());
    }

    #[test]
    fn comments_case_and_whitespace_are_insignificant() {
        let src = "\
! a paper loop
program example1
param N1, N2
do I1 = 1, N1   ! outer
do I2 = 1, N2
S: a(3*I1+1, 2*I1+I2-1) = a(I1+3, I2+1)
enddo
# hash comments too
enddo
end
";
        assert_eq!(parse_program(src).unwrap(), example1());
    }

    #[test]
    fn imperfect_nesting_and_empty_sides() {
        let src = "\
PROGRAM example3
PARAM N
DO I = 1, N
  DO J = 1, I
    DO K = J, I
      S1: ... = a(I + 2*K + 5, 4*K - J)
    ENDDO
    S2: a(I - J, I + J) = ...
  ENDDO
ENDDO
END
";
        let p = parse_program(src).unwrap();
        assert!(!p.is_perfect_nest());
        let stmts = p.statements();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].stmt.name, "S1");
        assert_eq!(stmts[0].stmt.refs.len(), 1);
        assert!(!stmts[0].stmt.refs[0].is_write());
        assert_eq!(stmts[1].positions, vec![1, 1, 2]);
    }

    #[test]
    fn minmax_bounds_parse() {
        let src = "\
PROGRAM bands
PARAM M, J0
DO I = max(-M, -J0), -1
  S: a(I + 1) = a(-I)
ENDDO
END
";
        let p = parse_program(src).unwrap();
        let expected = Program::new(
            "bands",
            &["M", "J0"],
            vec![loop_minmax(
                "I",
                vec![-v("M"), -v("J0")],
                vec![c(-1)],
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![v("I") + c(1)]),
                        ArrayRef::read("a", vec![-v("I")]),
                    ],
                )],
            )],
        );
        assert_eq!(p, expected);
    }

    #[test]
    fn coefficient_forms_and_cancellation() {
        let src = "\
PROGRAM forms
PARAM N
DO I = 1, N
  S: a(I*2 + 3, 2*I - I - I) = a(0 - 1 + I)
ENDDO
END
";
        let p = parse_program(src).unwrap();
        let s = &p.statements()[0].stmt;
        assert_eq!(s.refs[0].subscripts[0], v("I") * 2 + c(3));
        // 2I - I - I cancels to the constant 0 with no residual term.
        assert_eq!(s.refs[0].subscripts[1], c(0));
        assert_eq!(s.refs[1].subscripts[0], v("I") - c(1));
    }

    #[test]
    fn program_names_keep_their_hyphens() {
        let src = "PROGRAM corpus-17\nEND\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.name, "corpus-17");
        assert!(p.body.is_empty());
    }

    #[test]
    fn diagnostics_carry_positions() {
        // Unknown variable in a subscript.
        let src = "PROGRAM p\nDO I = 1, 9\n  S: a(Q) = ...\nENDDO\nEND\n";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.pos, SourcePos { line: 3, col: 8 });
        assert!(err.message.contains("unknown variable `Q`"));
        // Unbalanced ENDDO.
        let err = parse_program("PROGRAM p\nENDDO\nEND\n").unwrap_err();
        assert_eq!(err.message, "ENDDO without a matching DO");
        // Missing ENDDO at END.
        let err = parse_program("PROGRAM p\nDO I = 1, 9\nEND\n").unwrap_err();
        assert!(err.message.contains("unclosed DO loop"));
        // Non-affine subscript.
        let err = parse_program(
            "PROGRAM p\nDO I = 1, 9\nDO J = 1, 9\nS: a(I*J) = ...\nENDDO\nENDDO\nEND\n",
        )
        .unwrap_err();
        assert!(err.message.contains("non-affine term"));
        // Missing END.
        let err = parse_program("PROGRAM p\nDO I = 1, 9\nENDDO\n").unwrap_err();
        assert_eq!(err.message, "missing END");
        assert_eq!(err.pos, SourcePos { line: 4, col: 1 });
    }

    #[test]
    fn multibyte_garbage_in_the_header_is_an_error_not_a_panic() {
        // A multibyte character straddling byte 7 of the first line must
        // produce the header diagnostic, not a char-boundary panic.
        for src in ["PROGRAé x\nEND\n", "Résumé\nEND\n", "ПРОГРАМ x\nEND\n"] {
            let err = parse_program(src).unwrap_err();
            assert!(
                err.message.contains("expected a PROGRAM header"),
                "{src:?}: {err}"
            );
        }
    }

    #[test]
    fn misplaced_minmax_is_rejected() {
        let err = parse_program("PROGRAM p\nDO I = min(1, 2), 9\nENDDO\nEND\n").unwrap_err();
        assert!(err.message.contains("only valid as an upper bound"));
        let err = parse_program("PROGRAM p\nDO I = 1, max(9, 8)\nENDDO\nEND\n").unwrap_err();
        assert!(err.message.contains("only valid as a lower bound"));
    }
}
