//! `rcp-lang`: a textual loop-nest language for the recurrence-chains
//! pipeline.
//!
//! The paper presents its loops as Fortran source (Figures 1–2, Examples
//! 1–4); this crate makes the same notation a first-class input format.  A
//! `.loop` file is a Fortran-flavoured description of a (possibly
//! imperfectly nested) affine loop program:
//!
//! ```text
//! PROGRAM example1
//! PARAM N1, N2
//! DO I1 = 1, N1
//!   DO I2 = 1, N2
//!     S: a(3*I1 + 1, 2*I1 + I2 - 1) = a(I1 + 3, I2 + 1)
//!   ENDDO
//! ENDDO
//! END
//! ```
//!
//! * [`parse_program`] — a zero-dependency lexer + recursive-descent parser
//!   producing [`rcp_loopir::Program`], with precise line/column
//!   diagnostics ([`ParseError`]): affine bound and subscript expressions
//!   over in-scope loop indices and declared `PARAM`s, `max(…)`/`min(…)`
//!   compound bounds, multiple statements per body, imperfect nesting.
//! * [`pretty`] — the canonical pretty-printer (`Program` → source).  Every
//!   program whose statements list their write references before their read
//!   references round-trips: `parse(pretty(p)) == p`, and canonical sources
//!   are fixed points: `pretty(parse(s)) == s`.
//!
//! Lines starting with `!` or `#` (and trailing `!` comments) are ignored,
//! indentation is insignificant, keywords are case-insensitive; the
//! pretty-printer emits the canonical upper-case, two-space-indented form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod printer;

pub use parser::{parse_program, ParseError, SourcePos};
pub use printer::pretty;
