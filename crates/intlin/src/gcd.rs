//! Greatest common divisors, least common multiples and the extended
//! Euclidean algorithm.
//!
//! These are the primitives behind every exact integer test in the
//! dependence analyser: the classic GCD dependence test, the elimination of
//! equalities from constraint systems and the solution of linear
//! diophantine equations.

/// Greatest common divisor of two integers, always non-negative.
///
/// `gcd(0, 0) == 0` by convention.
///
/// ```
/// use rcp_intlin::gcd;
/// assert_eq!(gcd(12, -18), 6);
/// assert_eq!(gcd(0, 7), 7);
/// assert_eq!(gcd(0, 0), 0);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two integers, always non-negative.
///
/// `lcm(0, x) == 0`.  Panics on overflow in debug builds.
// Panic-hygiene allow: documented overflow abort, not a recoverable error.
#[allow(clippy::expect_used)]
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b))
        .abs()
        .checked_mul(b.abs())
        .expect("lcm overflow")
}

/// GCD of a slice of integers; `0` for an empty slice.
pub fn gcd_slice(values: &[i64]) -> i64 {
    values.iter().fold(0, |acc, &v| gcd(acc, v))
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` such that `a*x + b*y = g = gcd(a, b)` with
/// `g >= 0`.
///
/// ```
/// use rcp_intlin::ext_gcd;
/// let (g, x, y) = ext_gcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
pub fn ext_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    // Iterative extended Euclid on the absolute values, signs fixed up at
    // the end so that the Bezout identity holds for the original inputs.
    let (mut old_r, mut r) = (a.abs(), b.abs());
    let (mut old_s, mut s) = (1i64, 0i64);
    let (mut old_t, mut t) = (0i64, 1i64);
    while r != 0 {
        let q = old_r / r;
        let tmp_r = old_r - q * r;
        old_r = r;
        r = tmp_r;
        let tmp_s = old_s - q * s;
        old_s = s;
        s = tmp_s;
        let tmp_t = old_t - q * t;
        old_t = t;
        t = tmp_t;
    }
    let x = if a < 0 { -old_s } else { old_s };
    let y = if b < 0 { -old_t } else { old_t };
    (old_r, x, y)
}

/// Solves the single linear diophantine equation `a*x + b*y = c`.
///
/// Returns `None` when no integer solution exists (i.e. `gcd(a,b)` does not
/// divide `c`), otherwise one particular solution `(x0, y0)`.  The general
/// solution is `x = x0 + k*(b/g)`, `y = y0 - k*(a/g)`.
pub fn solve_two_var(a: i64, b: i64, c: i64) -> Option<(i64, i64)> {
    if a == 0 && b == 0 {
        return if c == 0 { Some((0, 0)) } else { None };
    }
    let (g, x, y) = ext_gcd(a, b);
    if c % g != 0 {
        return None;
    }
    let k = c / g;
    Some((x * k, y * k))
}

/// Positive remainder of `a mod m` (`m > 0`), in `0..m`.
pub fn pos_mod(a: i64, m: i64) -> i64 {
    debug_assert!(m > 0);
    ((a % m) + m) % m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(48, 36), 12);
        assert_eq!(gcd(-48, 36), 12);
        assert_eq!(gcd(48, -36), 12);
        assert_eq!(gcd(-48, -36), 12);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 9), 9);
        assert_eq!(gcd(9, 0), 9);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(7, 7), 7);
    }

    #[test]
    fn gcd_slice_basic() {
        assert_eq!(gcd_slice(&[]), 0);
        assert_eq!(gcd_slice(&[6]), 6);
        assert_eq!(gcd_slice(&[6, 9, 15]), 3);
        assert_eq!(gcd_slice(&[0, 0, 5]), 5);
    }

    #[test]
    fn ext_gcd_bezout_identity() {
        for &(a, b) in &[
            (240, 46),
            (-240, 46),
            (240, -46),
            (-240, -46),
            (0, 5),
            (5, 0),
            (1, 1),
            (7, 13),
        ] {
            let (g, x, y) = ext_gcd(a, b);
            assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
            assert_eq!(a * x + b * y, g, "bezout fails for ({a},{b})");
        }
    }

    #[test]
    fn solve_two_var_solutions() {
        let (x, y) = solve_two_var(3, 5, 7).unwrap();
        assert_eq!(3 * x + 5 * y, 7);
        assert!(solve_two_var(4, 6, 7).is_none());
        let (x, y) = solve_two_var(4, 6, 10).unwrap();
        assert_eq!(4 * x + 6 * y, 10);
        assert_eq!(solve_two_var(0, 0, 0), Some((0, 0)));
        assert_eq!(solve_two_var(0, 0, 3), None);
    }

    #[test]
    fn pos_mod_range() {
        assert_eq!(pos_mod(7, 3), 1);
        assert_eq!(pos_mod(-7, 3), 2);
        assert_eq!(pos_mod(0, 3), 0);
        assert_eq!(pos_mod(-3, 3), 0);
    }
}
