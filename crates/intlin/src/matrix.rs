//! Dense integer and rational matrices.
//!
//! The matrices in this problem domain are tiny (loop depth × subscript
//! dimension, i.e. at most a handful of rows and columns), so a simple
//! row-major `Vec` representation with exact arithmetic is both adequate
//! and easy to audit.  `IMat` is the integer matrix used for subscript
//! coefficients `A`, `B`; `RatMat` is the rational matrix used for the
//! recurrence matrix `T = B·A⁻¹` and its inverse.

use crate::rational::Rational;
use crate::vector::IVec;
use std::fmt;

/// A dense integer matrix in row-major order.
///
/// Following the paper's convention, a matrix with `rows == m` maps an
/// `m`-dimensional row vector `i` to `i · M` of dimension `cols`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// Creates a matrix from a row-major data slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        IMat { rows, cols, data }
    }

    /// Creates a matrix from nested rows.
    pub fn from_rows(rows: &[Vec<i64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
        }
        IMat {
            rows: r,
            cols: c,
            data: rows.concat(),
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = IMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns row `r` as a vector.
    pub fn row(&self, r: usize) -> IVec {
        self.data[r * self.cols..(r + 1) * self.cols].to_vec()
    }

    /// Returns column `c` as a vector.
    pub fn col(&self, c: usize) -> IVec {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> IMat {
        let mut t = IMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn mul(&self, other: &IMat) -> IMat {
        assert_eq!(self.cols, other.rows, "matrix dimension mismatch");
        let mut out = IMat::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Row-vector-times-matrix product `v · self` (the paper's `i·A`).
    pub fn apply_row(&self, v: &[i64]) -> IVec {
        assert_eq!(v.len(), self.rows, "vector/matrix dimension mismatch");
        (0..self.cols)
            .map(|c| (0..self.rows).map(|r| v[r] * self[(r, c)]).sum())
            .collect()
    }

    /// Exact determinant via the fraction-free Bareiss algorithm.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    // Panic-hygiene allow: documented overflow abort — a determinant outside
    // i64 is a hard arithmetic limit, not a recoverable condition.
    #[allow(clippy::expect_used)]
    pub fn det(&self) -> i64 {
        assert!(self.is_square(), "determinant of non-square matrix");
        let n = self.rows;
        if n == 0 {
            return 1;
        }
        let mut m: Vec<Vec<i128>> = (0..n)
            .map(|r| self.row(r).iter().map(|&x| x as i128).collect())
            .collect();
        let mut sign = 1i128;
        let mut prev = 1i128;
        for k in 0..n - 1 {
            if m[k][k] == 0 {
                // pivot: find a row below with a non-zero entry in column k
                let swap = (k + 1..n).find(|&r| m[r][k] != 0);
                match swap {
                    Some(r) => {
                        m.swap(k, r);
                        sign = -sign;
                    }
                    None => return 0,
                }
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) / prev;
                }
                m[i][k] = 0;
            }
            prev = m[k][k];
        }
        let d = sign * m[n - 1][n - 1];
        i64::try_from(d).expect("determinant overflows i64")
    }

    /// Rank of the matrix (over the rationals).
    pub fn rank(&self) -> usize {
        self.to_rational().rank()
    }

    /// True if the matrix is square with full rank.
    pub fn is_full_rank(&self) -> bool {
        self.is_square() && self.det() != 0
    }

    /// True if the matrix is unimodular (square, determinant ±1).
    pub fn is_unimodular(&self) -> bool {
        self.is_square() && self.det().abs() == 1
    }

    /// Converts to a rational matrix.
    pub fn to_rational(&self) -> RatMat {
        RatMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| Rational::from_int(x)).collect(),
        }
    }

    /// Exact inverse as a rational matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<RatMat> {
        self.to_rational().inverse()
    }
}

impl std::ops::Index<(usize, usize)> for IMat {
    type Output = i64;
    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IMat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

/// A dense rational matrix in row-major order.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMat {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RatMat {
    /// Creates a matrix from a row-major data vector.
    pub fn new(rows: usize, cols: usize, data: Vec<Rational>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        RatMat { rows, cols, data }
    }

    /// The `n × n` rational identity.
    pub fn identity(n: usize) -> Self {
        let mut m = RatMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::ONE;
        }
        m
    }

    /// The zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RatMat {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product.
    pub fn mul(&self, other: &RatMat) -> RatMat {
        assert_eq!(self.cols, other.rows, "matrix dimension mismatch");
        let mut out = RatMat::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a.is_zero() {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Row-vector-times-matrix product with a rational row vector.
    pub fn apply_row(&self, v: &[Rational]) -> Vec<Rational> {
        assert_eq!(v.len(), self.rows, "vector/matrix dimension mismatch");
        (0..self.cols)
            .map(|c| (0..self.rows).fold(Rational::ZERO, |acc, r| acc + v[r] * self[(r, c)]))
            .collect()
    }

    /// Row-vector-times-matrix product with an integer row vector.
    pub fn apply_int_row(&self, v: &[i64]) -> Vec<Rational> {
        let rv: Vec<Rational> = v.iter().map(|&x| Rational::from_int(x)).collect();
        self.apply_row(&rv)
    }

    /// Determinant by Gaussian elimination with exact rationals.
    pub fn det(&self) -> Rational {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let n = self.rows;
        let mut m = self.clone();
        let mut det = Rational::ONE;
        for k in 0..n {
            // pivot
            let pivot = (k..n).find(|&r| !m[(r, k)].is_zero());
            let pr = match pivot {
                Some(pr) => pr,
                None => return Rational::ZERO,
            };
            if pr != k {
                m.swap_rows(pr, k);
                det = -det;
            }
            det = det * m[(k, k)];
            let inv = m[(k, k)].recip();
            for r in k + 1..n {
                let factor = m[(r, k)] * inv;
                if factor.is_zero() {
                    continue;
                }
                for c in k..n {
                    let v = m[(k, c)];
                    m[(r, c)] = m[(r, c)] - factor * v;
                }
            }
        }
        det
    }

    /// Rank by Gaussian elimination.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..m.cols {
            if row >= m.rows {
                break;
            }
            let pivot = (row..m.rows).find(|&r| !m[(r, col)].is_zero());
            let pr = match pivot {
                Some(pr) => pr,
                None => continue,
            };
            m.swap_rows(pr, row);
            let inv = m[(row, col)].recip();
            for r in 0..m.rows {
                if r == row || m[(r, col)].is_zero() {
                    continue;
                }
                let factor = m[(r, col)] * inv;
                for c in col..m.cols {
                    let v = m[(row, c)];
                    m[(r, c)] = m[(r, c)] - factor * v;
                }
            }
            row += 1;
            rank += 1;
        }
        rank
    }

    /// Exact inverse via Gauss-Jordan, or `None` when singular.
    pub fn inverse(&self) -> Option<RatMat> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut m = self.clone();
        let mut inv = RatMat::identity(n);
        for k in 0..n {
            let pivot = (k..n).find(|&r| !m[(r, k)].is_zero())?;
            m.swap_rows(pivot, k);
            inv.swap_rows(pivot, k);
            let p = m[(k, k)].recip();
            for c in 0..n {
                m[(k, c)] = m[(k, c)] * p;
                inv[(k, c)] = inv[(k, c)] * p;
            }
            for r in 0..n {
                if r == k || m[(r, k)].is_zero() {
                    continue;
                }
                let factor = m[(r, k)];
                for c in 0..n {
                    let mv = m[(k, c)];
                    let iv = inv[(k, c)];
                    m[(r, c)] = m[(r, c)] - factor * mv;
                    inv[(r, c)] = inv[(r, c)] - factor * iv;
                }
            }
        }
        Some(inv)
    }

    /// True if every entry is an integer.
    pub fn is_integral(&self) -> bool {
        self.data.iter().all(|r| r.is_integer())
    }

    /// Converts to an integer matrix when every entry is integral.
    // Panic-hygiene allow: the `unwrap` is guarded by the `is_integral`
    // check above it — every entry is known to be an integer.
    #[allow(clippy::unwrap_used)]
    pub fn to_integer(&self) -> Option<IMat> {
        if !self.is_integral() {
            return None;
        }
        Some(IMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|r| r.as_integer().unwrap()).collect(),
        })
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let ia = a * self.cols + c;
            let ib = b * self.cols + c;
            self.data.swap(ia, ib);
        }
    }
}

impl std::ops::Index<(usize, usize)> for RatMat {
    type Output = Rational;
    fn index(&self, (r, c): (usize, usize)) -> &Rational {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for RatMat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Rational {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for RatMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            let row: Vec<String> = (0..self.cols).map(|c| self[(r, c)].to_string()).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = IMat::from_rows(&[vec![1, 2], vec![3, 4]]);
        assert_eq!(m[(0, 1)], 2);
        assert_eq!(m.row(1), vec![3, 4]);
        assert_eq!(m.col(0), vec![1, 3]);
        assert_eq!(m.transpose().row(0), vec![1, 3]);
    }

    #[test]
    fn identity_and_multiplication() {
        let m = IMat::from_rows(&[vec![1, 2], vec![3, 4]]);
        let i = IMat::identity(2);
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
        let p = m.mul(&m);
        assert_eq!(p, IMat::from_rows(&[vec![7, 10], vec![15, 22]]));
    }

    #[test]
    fn row_application_matches_paper_convention() {
        // Example 1 of the paper: reference a(3*I1+1, 2*I1+I2-1) has
        //   A = [[3,2],[0,1]], a = (1,-1); iteration (1,2) maps to (4,3).
        let a = IMat::from_rows(&[vec![3, 2], vec![0, 1]]);
        assert_eq!(a.apply_row(&[1, 2]), vec![3, 4]);
    }

    #[test]
    fn determinants() {
        assert_eq!(IMat::from_rows(&[vec![3, 2], vec![0, 1]]).det(), 3);
        assert_eq!(IMat::from_rows(&[vec![1, 2], vec![2, 4]]).det(), 0);
        assert_eq!(IMat::identity(3).det(), 1);
        let m = IMat::from_rows(&[vec![0, 1, 2], vec![1, 0, 3], vec![4, -3, 8]]);
        assert_eq!(m.det(), -2);
        assert_eq!(IMat::new(0, 0, vec![]).det(), 1);
    }

    #[test]
    fn rank_and_full_rank() {
        assert_eq!(IMat::from_rows(&[vec![1, 2], vec![2, 4]]).rank(), 1);
        assert_eq!(IMat::from_rows(&[vec![1, 2], vec![3, 4]]).rank(), 2);
        assert!(IMat::from_rows(&[vec![1, 2], vec![3, 4]]).is_full_rank());
        assert!(!IMat::from_rows(&[vec![1, 2], vec![2, 4]]).is_full_rank());
        assert_eq!(IMat::zeros(2, 3).rank(), 0);
    }

    #[test]
    fn unimodularity() {
        assert!(IMat::identity(3).is_unimodular());
        assert!(IMat::from_rows(&[vec![1, 1], vec![0, 1]]).is_unimodular());
        assert!(!IMat::from_rows(&[vec![2, 0], vec![0, 1]]).is_unimodular());
    }

    #[test]
    fn rational_inverse_round_trip() {
        let a = IMat::from_rows(&[vec![3, 2], vec![0, 1]]);
        let inv = a.inverse().unwrap();
        let prod = a.to_rational().mul(&inv);
        assert_eq!(prod, RatMat::identity(2));
        assert!(IMat::from_rows(&[vec![1, 2], vec![2, 4]])
            .inverse()
            .is_none());
    }

    #[test]
    fn example1_recurrence_matrix() {
        // T = B·A⁻¹ for example 1: A=[[3,2],[0,1]], B=[[1,0],[0,1]], so
        // T = A⁻¹ and det(T) = 1/3 — the paper uses T = B·A⁻¹ with
        // |det(T⁻¹)| = 3 driving the Theorem-1 bound.
        let a = IMat::from_rows(&[vec![3, 2], vec![0, 1]]);
        let b = IMat::identity(2);
        let t = b.to_rational().mul(&a.inverse().unwrap());
        assert_eq!(t.det(), Rational::new(1, 3));
        let tinv = t.inverse().unwrap();
        assert_eq!(tinv.det(), Rational::from_int(3));
    }

    #[test]
    fn rational_matrix_rank() {
        let m = RatMat::new(
            2,
            3,
            vec![
                Rational::new(1, 2),
                Rational::ONE,
                Rational::ZERO,
                Rational::ONE,
                Rational::from_int(2),
                Rational::ZERO,
            ],
        );
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn integral_conversion() {
        let m = IMat::from_rows(&[vec![2, 0], vec![0, 2]]);
        let r = m.to_rational();
        assert!(r.is_integral());
        assert_eq!(r.to_integer().unwrap(), m);
        let half = RatMat::new(1, 1, vec![Rational::new(1, 2)]);
        assert!(half.to_integer().is_none());
    }
}
