//! Hermite normal form via unimodular column operations.
//!
//! The column-style Hermite normal form `H = A·U` (with `U` unimodular) is
//! the workhorse behind the exact diophantine solver: once `A` is brought to
//! column echelon form, the dependence equation `i·A + a = j·B + b` can be
//! solved by simple forward substitution, and the columns of `U` that map to
//! zero columns of `H` span the lattice of homogeneous solutions.

use crate::gcd::ext_gcd;
use crate::matrix::IMat;

/// The result of a Hermite-normal-form computation: `h = a · u` with `u`
/// unimodular and `h` in column echelon form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HnfResult {
    /// The column-echelon Hermite form.
    pub h: IMat,
    /// The unimodular transformation with `a.mul(&u) == h`.
    pub u: IMat,
    /// For each matrix row in order, the pivot column assigned to it (if
    /// any).  Rows without a pivot are linearly dependent on earlier rows.
    pub pivots: Vec<Option<usize>>,
}

/// Computes the column-style Hermite normal form of `a`.
///
/// Column operations (swap, negate, add integer multiple of one column to
/// another) are accumulated into the unimodular matrix `u`, so the identity
/// `a · u == h` always holds.  Pivots are made positive and each pivot is
/// the only non-zero entry of its row among columns at or after the pivot
/// column; entries of the pivot row in *earlier* pivot columns are reduced
/// modulo the pivot.
// Panic-hygiene allow: the single `unwrap` finds a non-zero column right
// after the all-zero case was excluded — an invariant, not an error path.
#[allow(clippy::unwrap_used)]
pub fn hermite_normal_form(a: &IMat) -> HnfResult {
    let rows = a.rows();
    let cols = a.cols();
    let mut h = a.clone();
    let mut u = IMat::identity(cols);
    let mut pivots: Vec<Option<usize>> = vec![None; rows];
    let mut next_col = 0usize;

    for r in 0..rows {
        if next_col >= cols {
            break;
        }
        // Use extended gcd combinations to gather the gcd of row r (over the
        // not-yet-pivoted columns) into column `next_col`.
        // First find any non-zero entry.
        if (next_col..cols).all(|c| h[(r, c)] == 0) {
            continue;
        }
        // Eliminate all but one non-zero entry in row r among columns >= next_col.
        loop {
            // Find the two non-zero columns (if only one remains we are done).
            let nz: Vec<usize> = (next_col..cols).filter(|&c| h[(r, c)] != 0).collect();
            if nz.len() <= 1 {
                break;
            }
            let c1 = nz[0];
            let c2 = nz[1];
            let x = h[(r, c1)];
            let y = h[(r, c2)];
            let (g, p, q) = ext_gcd(x, y);
            // new col c1 := p*c1 + q*c2  (entry becomes g)
            // new col c2 := -(y/g)*c1 + (x/g)*c2 (entry becomes 0)
            // The 2x2 transform [[p, -y/g],[q, x/g]] has determinant
            // p*x/g + q*y/g = (p*x + q*y)/g = 1, so it is unimodular.
            let yg = y / g;
            let xg = x / g;
            combine_columns(&mut h, c1, c2, p, q, -yg, xg);
            combine_columns(&mut u, c1, c2, p, q, -yg, xg);
        }
        // Move the surviving non-zero column into position next_col.
        let nz = (next_col..cols).find(|&c| h[(r, c)] != 0).unwrap();
        if nz != next_col {
            swap_columns(&mut h, nz, next_col);
            swap_columns(&mut u, nz, next_col);
        }
        // Make the pivot positive.
        if h[(r, next_col)] < 0 {
            negate_column(&mut h, next_col);
            negate_column(&mut u, next_col);
        }
        // Reduce the entries of row r in earlier pivot columns modulo the pivot.
        let pivot = h[(r, next_col)];
        for c in 0..next_col {
            let q = h[(r, c)].div_euclid(pivot);
            if q != 0 {
                add_column_multiple(&mut h, c, next_col, -q);
                add_column_multiple(&mut u, c, next_col, -q);
            }
        }
        pivots[r] = Some(next_col);
        next_col += 1;
    }

    HnfResult { h, u, pivots }
}

/// Applies the unimodular 2x2 column transform
/// `(col_a, col_b) := (p*col_a + q*col_b, s*col_a + t*col_b)` where the
/// matrix `[[p, s], [q, t]]` must be unimodular.
fn combine_columns(m: &mut IMat, a: usize, b: usize, p: i64, q: i64, s: i64, t: i64) {
    for r in 0..m.rows() {
        let va = m[(r, a)];
        let vb = m[(r, b)];
        m[(r, a)] = p * va + q * vb;
        m[(r, b)] = s * va + t * vb;
    }
}

fn swap_columns(m: &mut IMat, a: usize, b: usize) {
    for r in 0..m.rows() {
        let tmp = m[(r, a)];
        m[(r, a)] = m[(r, b)];
        m[(r, b)] = tmp;
    }
}

fn negate_column(m: &mut IMat, c: usize) {
    for r in 0..m.rows() {
        m[(r, c)] = -m[(r, c)];
    }
}

fn add_column_multiple(m: &mut IMat, dst: usize, src: usize, k: i64) {
    for r in 0..m.rows() {
        m[(r, dst)] += k * m[(r, src)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(a: &IMat) {
        let HnfResult { h, u, pivots } = hermite_normal_form(a);
        // A * U == H
        assert_eq!(a.mul(&u), h, "A*U != H for {:?}", a);
        // U unimodular
        assert_eq!(u.det().abs(), 1, "U not unimodular for {:?}", a);
        // echelon structure: each pivot positive, and row r has zeros after
        // its pivot column.
        for (r, p) in pivots.iter().enumerate() {
            if let Some(pc) = p {
                assert!(h[(r, *pc)] > 0);
                for c in pc + 1..h.cols() {
                    assert_eq!(h[(r, c)], 0, "non-zero after pivot in row {r}");
                }
            }
        }
    }

    #[test]
    fn hnf_identity() {
        check_invariants(&IMat::identity(3));
    }

    #[test]
    fn hnf_simple_cases() {
        check_invariants(&IMat::from_rows(&[vec![2, 4], vec![6, 8]]));
        check_invariants(&IMat::from_rows(&[vec![3, 2], vec![0, 1]]));
        check_invariants(&IMat::from_rows(&[vec![2, 3, 5]]));
        check_invariants(&IMat::from_rows(&[vec![0, 0], vec![0, 0]]));
        check_invariants(&IMat::from_rows(&[vec![4], vec![6]]));
        check_invariants(&IMat::from_rows(&[
            vec![1, 2, 3],
            vec![4, 5, 6],
            vec![7, 8, 9],
        ]));
        check_invariants(&IMat::from_rows(&[vec![-2, 4, -6], vec![3, -5, 7]]));
    }

    #[test]
    fn hnf_rank_deficient() {
        let a = IMat::from_rows(&[vec![1, 2], vec![2, 4]]);
        let res = hermite_normal_form(&a);
        // Second row depends on the first: only one pivot.
        assert_eq!(res.pivots.iter().filter(|p| p.is_some()).count(), 1);
        check_invariants(&a);
    }

    #[test]
    fn hnf_single_row_gcd() {
        let a = IMat::from_rows(&[vec![6, 10, 15]]);
        let res = hermite_normal_form(&a);
        // gcd(6,10,15) = 1 should appear as the pivot.
        assert_eq!(res.h[(0, 0)], 1);
        assert_eq!(res.h[(0, 1)], 0);
        assert_eq!(res.h[(0, 2)], 0);
    }
}
