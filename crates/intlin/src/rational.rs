//! Exact rational arithmetic over `i128`.
//!
//! The recurrence matrices of the paper, `T = B·A⁻¹` and
//! `u = (b − a)·A⁻¹`, are rational in general.  Chain following and the
//! Theorem-1 critical-path bound therefore need exact rational arithmetic;
//! floating point would silently mis-classify integrality ("is the
//! predecessor of this iteration an integer point?").

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// An exact rational number `num/den` with `den > 0` and
/// `gcd(num, den) == 1` (canonical form).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a new rational, reducing to canonical form.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd128(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates an integral rational.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }

    /// The numerator in canonical form.
    pub fn num(&self) -> i128 {
        self.num
    }

    /// The (positive) denominator in canonical form.
    pub fn den(&self) -> i128 {
        self.den
    }

    /// True if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The integer value if integral.
    pub fn as_integer(&self) -> Option<i64> {
        if self.den == 1 {
            i64::try_from(self.num).ok()
        } else {
            None
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics when the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Floor of the rational as an integer.
    // Panic-hygiene allow: documented overflow abort, not a recoverable error.
    #[allow(clippy::expect_used)]
    pub fn floor(&self) -> i64 {
        let q = self.num.div_euclid(self.den);
        i64::try_from(q).expect("rational floor overflows i64")
    }

    /// Ceiling of the rational as an integer.
    // Panic-hygiene allow: documented overflow abort, not a recoverable error.
    #[allow(clippy::expect_used)]
    pub fn ceil(&self) -> i64 {
        let q = -(-self.num).div_euclid(self.den);
        i64::try_from(q).expect("rational ceil overflows i64")
    }

    /// Approximate value as `f64` (for reporting only, never for decisions).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form() {
        let r = Rational::new(4, -6);
        assert_eq!(r.num(), -2);
        assert_eq!(r.den(), 3);
        assert_eq!(Rational::new(0, -5), Rational::ZERO);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn integrality() {
        assert!(Rational::new(6, 3).is_integer());
        assert_eq!(Rational::new(6, 3).as_integer(), Some(2));
        assert!(!Rational::new(7, 3).is_integer());
        assert_eq!(Rational::new(7, 3).as_integer(), None);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 3).floor(), 2);
        assert_eq!(Rational::new(7, 3).ceil(), 3);
        assert_eq!(Rational::new(-7, 3).floor(), -3);
        assert_eq!(Rational::new(-7, 3).ceil(), -2);
        assert_eq!(Rational::new(6, 3).floor(), 2);
        assert_eq!(Rational::new(6, 3).ceil(), 2);
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(Rational::new(-2, 3).recip(), Rational::new(-3, 2));
        assert_eq!(Rational::new(-2, 3).abs(), Rational::new(2, 3));
    }
}
