//! Exact solution of systems of linear diophantine equations.
//!
//! The dependence equation of the paper, `i·A + a = j·B + b`, is a system
//! of linear diophantine equations in the combined unknown vector
//! `(i, j)`.  This module solves the generic problem `M·y = c` (column
//! convention) and `x·A = b` (the paper's row convention) exactly over the
//! integers, returning a particular solution together with a basis of the
//! lattice of homogeneous solutions; the full solution set is
//! `particular + Z·basis₁ + … + Z·basisₖ`.

use crate::hnf::hermite_normal_form;
use crate::matrix::IMat;
use crate::vector::IVec;

/// The solution set of a linear diophantine system.
///
/// Every integer solution has the form
/// `particular + Σ tₖ · basis[k]` with `tₖ ∈ Z`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiophantineSolution {
    /// One particular integer solution.
    pub particular: IVec,
    /// Basis vectors of the homogeneous solution lattice (possibly empty,
    /// in which case the solution is unique).
    pub basis: Vec<IVec>,
}

impl DiophantineSolution {
    /// True when the system has exactly one integer solution.
    pub fn is_unique(&self) -> bool {
        self.basis.is_empty()
    }

    /// Evaluates the parametric solution at the given lattice coordinates.
    ///
    /// # Panics
    /// Panics if `params.len() != self.basis.len()`.
    pub fn at(&self, params: &[i64]) -> IVec {
        assert_eq!(params.len(), self.basis.len(), "parameter count mismatch");
        let mut out = self.particular.clone();
        for (t, b) in params.iter().zip(&self.basis) {
            for (o, v) in out.iter_mut().zip(b) {
                *o += t * v;
            }
        }
        out
    }
}

/// Solves `M · y = c` over the integers, where `y` is a column vector with
/// `M.cols()` components and `c` has `M.rows()` components.
///
/// Returns `None` when the system has no integer solution.
pub fn solve_linear_system(m: &IMat, c: &[i64]) -> Option<DiophantineSolution> {
    solve_with_hnf(m, c, &hermite_normal_form(m))
}

/// [`solve_linear_system`] with the Hermite normal form of `m` supplied by
/// the caller — the HNF depends only on the coefficient matrix, so one
/// (possibly memoised) decomposition serves every right-hand side.
// Panic-hygiene allow: the `expect` is a documented overflow abort — a
// solution component outside i64 is a hard arithmetic limit, not a
// recoverable condition.
#[allow(clippy::expect_used)]
pub fn solve_with_hnf(
    m: &IMat,
    c: &[i64],
    res: &crate::hnf::HnfResult,
) -> Option<DiophantineSolution> {
    assert_eq!(c.len(), m.rows(), "right-hand side dimension mismatch");
    // Column-style HNF: M · U = H with H in column echelon form.  Writing
    // y = U·z the system becomes H·z = c, which is solved by forward
    // substitution row by row; columns of H that never serve as pivots are
    // free parameters whose images under U span the homogeneous lattice.
    let h = &res.h;
    let u = &res.u;
    let cols = m.cols();
    let mut z = vec![0i64; cols];
    let mut pivot_cols = vec![false; cols];

    for r in 0..m.rows() {
        match res.pivots[r] {
            Some(pc) => {
                pivot_cols[pc] = true;
                // residual = c[r] - Σ_{c<pc} H[r,c]·z[c]
                let mut residual = c[r] as i128;
                for cc in 0..pc {
                    residual -= h[(r, cc)] as i128 * z[cc] as i128;
                }
                let pivot = h[(r, pc)] as i128;
                if residual % pivot != 0 {
                    return None; // no integer solution for this equation
                }
                z[pc] = i64::try_from(residual / pivot).expect("diophantine solution overflow");
            }
            None => {
                // Row r of H is entirely determined by earlier pivots;
                // verify consistency of the equation.
                let mut lhs = 0i128;
                for cc in 0..cols {
                    lhs += h[(r, cc)] as i128 * z[cc] as i128;
                }
                if lhs != c[r] as i128 {
                    return None;
                }
            }
        }
    }

    // particular solution y = U·z
    let particular: IVec = (0..cols)
        .map(|row| (0..cols).map(|k| u[(row, k)] * z[k]).sum())
        .collect();

    // homogeneous basis: columns of U for the non-pivot columns of H.
    let basis: Vec<IVec> = (0..cols)
        .filter(|&cidx| !pivot_cols[cidx])
        .map(|cidx| u.col(cidx))
        .collect();

    Some(DiophantineSolution { particular, basis })
}

/// Solves `x · A = b` over the integers (the paper's row-vector
/// convention), where `x` has `A.rows()` components.
pub fn solve_row_system(a: &IMat, b: &[i64]) -> Option<DiophantineSolution> {
    solve_linear_system(&a.transpose(), b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(m: &IMat, c: &[i64], sol: &DiophantineSolution) {
        // particular solution satisfies the system
        let apply = |y: &[i64]| -> IVec {
            (0..m.rows())
                .map(|r| (0..m.cols()).map(|cc| m[(r, cc)] * y[cc]).sum())
                .collect()
        };
        assert_eq!(
            apply(&sol.particular),
            c.to_vec(),
            "particular not a solution"
        );
        for b in &sol.basis {
            assert_eq!(apply(b), vec![0; m.rows()], "basis vector not homogeneous");
        }
    }

    #[test]
    fn single_equation() {
        // 3x + 5y = 7
        let m = IMat::from_rows(&[vec![3, 5]]);
        let sol = solve_linear_system(&m, &[7]).unwrap();
        verify(&m, &[7], &sol);
        assert_eq!(sol.basis.len(), 1);
        // no solution when gcd does not divide rhs
        let m2 = IMat::from_rows(&[vec![4, 6]]);
        assert!(solve_linear_system(&m2, &[7]).is_none());
    }

    #[test]
    fn square_unique_solution() {
        // x + 2y = 5, 3x + 4y = 11  ->  x = 1, y = 2
        let m = IMat::from_rows(&[vec![1, 2], vec![3, 4]]);
        let sol = solve_linear_system(&m, &[5, 11]).unwrap();
        verify(&m, &[5, 11], &sol);
        assert!(sol.is_unique());
        assert_eq!(sol.particular, vec![1, 2]);
    }

    #[test]
    fn square_no_integer_solution() {
        // 2x = 1 has no integer solution
        let m = IMat::from_rows(&[vec![2, 0], vec![0, 1]]);
        assert!(solve_linear_system(&m, &[1, 0]).is_none());
    }

    #[test]
    fn inconsistent_system() {
        // x + y = 1, 2x + 2y = 3 is inconsistent
        let m = IMat::from_rows(&[vec![1, 1], vec![2, 2]]);
        assert!(solve_linear_system(&m, &[1, 3]).is_none());
    }

    #[test]
    fn underdetermined_system_parametric() {
        // x + y + z = 6 : two free parameters
        let m = IMat::from_rows(&[vec![1, 1, 1]]);
        let sol = solve_linear_system(&m, &[6]).unwrap();
        verify(&m, &[6], &sol);
        assert_eq!(sol.basis.len(), 2);
        // every instantiation satisfies the system
        for t in [-2i64, 0, 3] {
            for s in [-1i64, 1, 4] {
                let y = sol.at(&[t, s]);
                assert_eq!(y.iter().sum::<i64>(), 6);
            }
        }
    }

    #[test]
    fn paper_example1_dependence_equation() {
        // Example 1 (eq. 3):  3 i1 + 1 = j1 + 3,  2 i1 + i2 - 1 = j2 + 1
        // as a system over (i1, i2, j1, j2):
        //   3 i1            - j1      = 2
        //   2 i1 + i2            - j2 = 2
        let m = IMat::from_rows(&[vec![3, 0, -1, 0], vec![2, 1, 0, -1]]);
        let sol = solve_linear_system(&m, &[2, 2]).unwrap();
        verify(&m, &[2, 2], &sol);
        assert_eq!(sol.basis.len(), 2);
        // The solutions satisfy j = (3*i1 - 2, 2*i1 + i2 - 2), so
        // (2,2) -> (4,4) is a direct dependence with distance (2,2) — one of
        // the d=2 arrows of Figure 1.  (The prose example "(1,2)->(3,4)" in
        // the paper does not satisfy its own equation (3); see
        // EXPERIMENTS.md.)
        let mut found = false;
        for t in -30..=30 {
            for s in -30..=30 {
                if sol.at(&[t, s]) == vec![2, 2, 4, 4] {
                    found = true;
                }
            }
        }
        assert!(found, "dependence (2,2)->(4,4) must be a solution of eq. 3");
    }

    #[test]
    fn figure2_dependence_equation() {
        // Figure 2: a(2I) = a(21-I)  =>  2 i = 21 - j  =>  2 i + j = 21.
        let m = IMat::from_rows(&[vec![2, 1]]);
        let sol = solve_linear_system(&m, &[21]).unwrap();
        verify(&m, &[21], &sol);
        // 6 -> 9 is a solution (2*6 = 12 = 21 - 9).
        let mut found = false;
        for t in -60..=60 {
            if sol.at(&[t]) == vec![6, 9] {
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn row_convention_wrapper() {
        // x·A = b with A = [[3,2],[0,1]] and b = (3,4) -> x = (1,2)
        let a = IMat::from_rows(&[vec![3, 2], vec![0, 1]]);
        let sol = solve_row_system(&a, &[3, 4]).unwrap();
        assert!(sol.is_unique());
        assert_eq!(sol.particular, vec![1, 2]);
    }

    #[test]
    fn zero_matrix_cases() {
        let m = IMat::zeros(2, 3);
        // homogeneous: every vector is a solution
        let sol = solve_linear_system(&m, &[0, 0]).unwrap();
        assert_eq!(sol.basis.len(), 3);
        // inconsistent
        assert!(solve_linear_system(&m, &[1, 0]).is_none());
    }
}
