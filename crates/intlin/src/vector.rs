//! Integer vector helpers and lexicographic ordering.
//!
//! Iteration vectors, distance vectors and affine offsets are all plain
//! `Vec<i64>` row vectors; this module collects the small amount of vector
//! algebra and the *lexicographic* comparison that the partitioning scheme
//! is built on (an iteration `i` precedes `j` when `i ≺ j`
//! lexicographically).

use std::cmp::Ordering;

/// An integer row vector (iteration vector, distance vector, offset…).
pub type IVec = Vec<i64>;

/// Component-wise sum `a + b`.
///
/// # Panics
/// Panics if the lengths differ.
pub fn add(a: &[i64], b: &[i64]) -> IVec {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Component-wise difference `a - b`.
pub fn sub(a: &[i64], b: &[i64]) -> IVec {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Component-wise negation.
pub fn neg(a: &[i64]) -> IVec {
    a.iter().map(|x| -x).collect()
}

/// Scalar multiple `k * a`.
pub fn scale(a: &[i64], k: i64) -> IVec {
    a.iter().map(|x| k * x).collect()
}

/// Inner product of two vectors.
pub fn dot(a: &[i64], b: &[i64]) -> i64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Lexicographic comparison of two equal-length integer vectors.
pub fn lex_cmp(a: &[i64], b: &[i64]) -> Ordering {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    for (x, y) in a.iter().zip(b) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// True if the vector is lexicographically positive (first non-zero
/// component is positive); the zero vector is *not* lexicographically
/// positive.
pub fn is_lex_positive(a: &[i64]) -> bool {
    for &x in a {
        if x > 0 {
            return true;
        }
        if x < 0 {
            return false;
        }
    }
    false
}

/// Floor division `a / b` rounding towards negative infinity, the
/// semantics used when emitting loop bounds like `(2*i1)/3`.
pub fn floor_div(a: i64, b: i64) -> i64 {
    a.div_euclid(b)
}

/// Ceiling division `a / b` rounding towards positive infinity.
pub fn ceil_div(a: i64, b: i64) -> i64 {
    -((-a).div_euclid(b))
}

/// Squared Euclidean length of an integer vector (exact, no floats).
pub fn norm_sq(a: &[i64]) -> i64 {
    a.iter().map(|x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        assert_eq!(add(&[1, 2], &[3, -4]), vec![4, -2]);
        assert_eq!(sub(&[1, 2], &[3, -4]), vec![-2, 6]);
        assert_eq!(neg(&[1, -2]), vec![-1, 2]);
        assert_eq!(scale(&[1, -2], 3), vec![3, -6]);
        assert_eq!(dot(&[1, 2, 3], &[4, 5, 6]), 32);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = add(&[1], &[1, 2]);
    }

    #[test]
    fn lexicographic_order() {
        assert_eq!(lex_cmp(&[1, 5], &[2, 0]), Ordering::Less);
        assert_eq!(lex_cmp(&[2, 0], &[2, 1]), Ordering::Less);
        assert_eq!(lex_cmp(&[2, 1], &[2, 1]), Ordering::Equal);
        assert_eq!(lex_cmp(&[3, 0], &[2, 9]), Ordering::Greater);
    }

    #[test]
    fn lex_positive() {
        assert!(is_lex_positive(&[0, 0, 1]));
        assert!(is_lex_positive(&[1, -5]));
        assert!(!is_lex_positive(&[0, 0, 0]));
        assert!(!is_lex_positive(&[0, -1, 5]));
        assert!(!is_lex_positive(&[]));
    }

    #[test]
    fn division_rounding() {
        assert_eq!(floor_div(7, 3), 2);
        assert_eq!(floor_div(-7, 3), -3);
        assert_eq!(ceil_div(7, 3), 3);
        assert_eq!(ceil_div(-7, 3), -2);
        assert_eq!(floor_div(6, 3), 2);
        assert_eq!(ceil_div(6, 3), 2);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_sq(&[3, 4]), 25);
        assert_eq!(norm_sq(&[]), 0);
    }
}
