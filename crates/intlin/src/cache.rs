//! A keyed memo cache for Hermite-normal-form and diophantine solves.
//!
//! The analysis front end solves the dependence equation `i·A + a = j·B + b`
//! for every reference pair it screens, and the same coefficient matrices
//! recur constantly: re-analysis of the same program, the synthetic-corpus
//! classification (whose generator draws subscripts from a small coefficient
//! range), and every benchmark that re-runs an analysis.  Both solvers are
//! pure functions of their inputs, so their results are memoised here in a
//! process-wide cache keyed by the exact inputs
//! (`IMat` for [`hermite_normal_form_cached`], `(IMat, rhs)` for
//! [`solve_linear_system_cached`]).
//!
//! Cached results are **bit-identical** to uncached ones — the cache stores
//! the value computed by the uncached function on first miss and clones it
//! on every hit (verified by property tests over the synthetic corpus).
//! Hit/miss counters are kept per solver; [`solver_cache_stats`] exposes
//! them so benchmark reports can show hit rates, and
//! [`reset_solver_cache`] clears both entries and counters for cold-start
//! measurements.
//!
//! The cache is bounded ([`CACHE_CAPACITY`] entries per solver).  Once full,
//! new results are still returned but no longer inserted — a deliberately
//! simple policy whose behaviour does not depend on timing, so cached and
//! uncached runs stay deterministic.

use crate::diophantine::{solve_linear_system, DiophantineSolution};
use crate::hnf::{hermite_normal_form, HnfResult};
use crate::matrix::IMat;
use crate::vector::IVec;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of entries each solver cache retains.
pub const CACHE_CAPACITY: usize = 1 << 16;

/// A process-wide bounded memo cache: a lazily allocated map behind a
/// lock, hit/miss counters, and a capacity guard.  Once full, new results
/// are still returned but no longer inserted — a deliberately simple
/// policy whose behaviour does not depend on timing, so cached and
/// uncached runs stay deterministic.
///
/// Every memoisation static in the workspace is an instance of this type:
/// the two solver caches below and the Fourier–Motzkin emptiness cache in
/// `rcp-presburger`.
pub struct MemoCache<K, V> {
    map: Mutex<Option<HashMap<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl<K: Eq + Hash, V: Clone> MemoCache<K, V> {
    /// An empty cache retaining at most `capacity` entries (usable in
    /// `static` position).
    pub const fn new(capacity: usize) -> Self {
        MemoCache {
            map: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
        }
    }

    /// Returns the cached value for `key`, computing and (capacity
    /// permitting) inserting it on a miss.  `compute` runs outside the
    /// lock, so concurrent misses may compute redundantly but never
    /// deadlock; the stored value is whichever insert wins.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        {
            let mut guard = self.map.lock().expect("memo cache poisoned");
            let cache = guard.get_or_insert_with(HashMap::new);
            if let Some(hit) = cache.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return hit.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = compute();
        let mut guard = self.map.lock().expect("memo cache poisoned");
        let cache = guard.get_or_insert_with(HashMap::new);
        if cache.len() < self.capacity {
            cache.insert(key, result.clone());
        }
        result
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the underlying computation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Empties the cache and zeroes the counters (for cold-start timing).
    pub fn reset(&self) {
        *self.map.lock().expect("memo cache poisoned") = None;
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

static HNF_CACHE: MemoCache<IMat, HnfResult> = MemoCache::new(CACHE_CAPACITY);
static DIO_CACHE: MemoCache<(IMat, IVec), Option<DiophantineSolution>> =
    MemoCache::new(CACHE_CAPACITY);

/// Hit/miss counters of the process-wide solver caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverCacheStats {
    /// Hermite-normal-form cache hits.
    pub hnf_hits: u64,
    /// Hermite-normal-form cache misses.
    pub hnf_misses: u64,
    /// Diophantine-solution cache hits.
    pub dio_hits: u64,
    /// Diophantine-solution cache misses.
    pub dio_misses: u64,
}

impl SolverCacheStats {
    /// Total lookups across both caches.
    pub fn lookups(&self) -> u64 {
        self.hnf_hits + self.hnf_misses + self.dio_hits + self.dio_misses
    }

    /// Fraction of lookups served from the cache (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hnf_hits + self.dio_hits;
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }
}

/// [`hermite_normal_form`] with process-wide
/// memoisation keyed by the input matrix.
pub fn hermite_normal_form_cached(a: &IMat) -> HnfResult {
    HNF_CACHE.get_or_compute(a.clone(), || hermite_normal_form(a))
}

/// [`solve_linear_system`] with
/// process-wide memoisation keyed by `(matrix, rhs)`.
pub fn solve_linear_system_cached(m: &IMat, c: &[i64]) -> Option<DiophantineSolution> {
    DIO_CACHE.get_or_compute((m.clone(), c.to_vec()), || solve_linear_system(m, c))
}

/// A snapshot of the hit/miss counters.
pub fn solver_cache_stats() -> SolverCacheStats {
    SolverCacheStats {
        hnf_hits: HNF_CACHE.hits(),
        hnf_misses: HNF_CACHE.misses(),
        dio_hits: DIO_CACHE.hits(),
        dio_misses: DIO_CACHE.misses(),
    }
}

/// Empties both caches and zeroes the counters (for cold-start timing).
pub fn reset_solver_cache() {
    HNF_CACHE.reset();
    DIO_CACHE.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-wide, so tests in this module compare
    // *deltas* rather than absolute values (other tests may run
    // concurrently and bump them).

    #[test]
    fn cached_hnf_is_bit_identical() {
        let mats = [
            IMat::from_rows(&[vec![2, 4], vec![6, 8]]),
            IMat::from_rows(&[vec![3, 0, -1, 0], vec![2, 1, 0, -1]]),
            IMat::from_rows(&[vec![0, 0], vec![0, 0]]),
        ];
        for m in &mats {
            let cold = hermite_normal_form_cached(m);
            let warm = hermite_normal_form_cached(m);
            let reference = hermite_normal_form(m);
            assert_eq!(cold, reference);
            assert_eq!(warm, reference);
        }
    }

    #[test]
    fn cached_solve_is_bit_identical_including_none() {
        let cases = [
            (IMat::from_rows(&[vec![3, 5]]), vec![7]),
            (IMat::from_rows(&[vec![4, 6]]), vec![7]), // no integer solution
            (IMat::from_rows(&[vec![1, 2], vec![3, 4]]), vec![5, 11]),
            (IMat::zeros(2, 3), vec![1, 0]), // inconsistent
        ];
        for (m, c) in &cases {
            let cold = solve_linear_system_cached(m, c);
            let warm = solve_linear_system_cached(m, c);
            let reference = solve_linear_system(m, c);
            assert_eq!(cold, reference);
            assert_eq!(warm, reference);
        }
    }

    #[test]
    fn repeated_lookups_hit() {
        let m = IMat::from_rows(&[vec![11, 13], vec![17, 19]]);
        let before = solver_cache_stats();
        let _ = hermite_normal_form_cached(&m);
        let _ = hermite_normal_form_cached(&m);
        let _ = hermite_normal_form_cached(&m);
        let after = solver_cache_stats();
        assert!(after.hnf_hits >= before.hnf_hits + 2);
        assert!(after.hnf_misses >= before.hnf_misses);
        assert!(after.lookups() >= before.lookups() + 3);
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(SolverCacheStats::default().hit_rate(), 0.0);
        let s = SolverCacheStats {
            hnf_hits: 3,
            hnf_misses: 1,
            dio_hits: 0,
            dio_misses: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
