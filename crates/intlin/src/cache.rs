//! A keyed memo cache for Hermite-normal-form and diophantine solves.
//!
//! The analysis front end solves the dependence equation `i·A + a = j·B + b`
//! for every reference pair it screens, and the same coefficient matrices
//! recur constantly: re-analysis of the same program, the synthetic-corpus
//! classification (whose generator draws subscripts from a small coefficient
//! range), and every benchmark that re-runs an analysis.  Both solvers are
//! pure functions of their inputs, so their results are memoised here in a
//! process-wide cache keyed by the exact inputs
//! (`IMat` for [`hermite_normal_form_cached`], `(IMat, rhs)` for
//! [`solve_linear_system_cached`]).
//!
//! Cached results are **bit-identical** to uncached ones — the cache stores
//! the value computed by the uncached function on first miss and clones it
//! on every hit (verified by property tests over the synthetic corpus).
//! Hit/miss counters are kept per solver; [`solver_cache_stats`] exposes
//! them so benchmark reports can show hit rates, and
//! [`reset_solver_cache`] clears both entries and counters for cold-start
//! measurements.
//!
//! The cache is bounded ([`CACHE_CAPACITY`] entries per solver).  Once full,
//! new results are still returned but no longer inserted — a deliberately
//! simple policy whose behaviour does not depend on timing, so cached and
//! uncached runs stay deterministic.

use crate::diophantine::{solve_linear_system, DiophantineSolution};
use crate::hnf::{hermite_normal_form, HnfResult};
use crate::matrix::IMat;
use crate::vector::IVec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of entries each solver cache retains.
pub const CACHE_CAPACITY: usize = 1 << 16;

/// Lazily allocated map behind a process-wide lock.
type CacheSlot<K, V> = Mutex<Option<HashMap<K, V>>>;

static HNF_CACHE: CacheSlot<IMat, HnfResult> = Mutex::new(None);
static DIO_CACHE: CacheSlot<(IMat, IVec), Option<DiophantineSolution>> = Mutex::new(None);
static HNF_HITS: AtomicU64 = AtomicU64::new(0);
static HNF_MISSES: AtomicU64 = AtomicU64::new(0);
static DIO_HITS: AtomicU64 = AtomicU64::new(0);
static DIO_MISSES: AtomicU64 = AtomicU64::new(0);

/// Hit/miss counters of the process-wide solver caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverCacheStats {
    /// Hermite-normal-form cache hits.
    pub hnf_hits: u64,
    /// Hermite-normal-form cache misses.
    pub hnf_misses: u64,
    /// Diophantine-solution cache hits.
    pub dio_hits: u64,
    /// Diophantine-solution cache misses.
    pub dio_misses: u64,
}

impl SolverCacheStats {
    /// Total lookups across both caches.
    pub fn lookups(&self) -> u64 {
        self.hnf_hits + self.hnf_misses + self.dio_hits + self.dio_misses
    }

    /// Fraction of lookups served from the cache (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hnf_hits + self.dio_hits;
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }
}

/// [`hermite_normal_form`](crate::hnf::hermite_normal_form) with process-wide
/// memoisation keyed by the input matrix.
pub fn hermite_normal_form_cached(a: &IMat) -> HnfResult {
    let mut guard = HNF_CACHE.lock().expect("hnf cache poisoned");
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(hit) = cache.get(a) {
        HNF_HITS.fetch_add(1, Ordering::Relaxed);
        return hit.clone();
    }
    HNF_MISSES.fetch_add(1, Ordering::Relaxed);
    drop(guard);
    let result = hermite_normal_form(a);
    let mut guard = HNF_CACHE.lock().expect("hnf cache poisoned");
    let cache = guard.get_or_insert_with(HashMap::new);
    if cache.len() < CACHE_CAPACITY {
        cache.insert(a.clone(), result.clone());
    }
    result
}

/// [`solve_linear_system`](crate::diophantine::solve_linear_system) with
/// process-wide memoisation keyed by `(matrix, rhs)`.
pub fn solve_linear_system_cached(m: &IMat, c: &[i64]) -> Option<DiophantineSolution> {
    let key = (m.clone(), c.to_vec());
    let mut guard = DIO_CACHE.lock().expect("diophantine cache poisoned");
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(hit) = cache.get(&key) {
        DIO_HITS.fetch_add(1, Ordering::Relaxed);
        return hit.clone();
    }
    DIO_MISSES.fetch_add(1, Ordering::Relaxed);
    drop(guard);
    let result = solve_linear_system(m, c);
    let mut guard = DIO_CACHE.lock().expect("diophantine cache poisoned");
    let cache = guard.get_or_insert_with(HashMap::new);
    if cache.len() < CACHE_CAPACITY {
        cache.insert(key, result.clone());
    }
    result
}

/// A snapshot of the hit/miss counters.
pub fn solver_cache_stats() -> SolverCacheStats {
    SolverCacheStats {
        hnf_hits: HNF_HITS.load(Ordering::Relaxed),
        hnf_misses: HNF_MISSES.load(Ordering::Relaxed),
        dio_hits: DIO_HITS.load(Ordering::Relaxed),
        dio_misses: DIO_MISSES.load(Ordering::Relaxed),
    }
}

/// Empties both caches and zeroes the counters (for cold-start timing).
pub fn reset_solver_cache() {
    *HNF_CACHE.lock().expect("hnf cache poisoned") = None;
    *DIO_CACHE.lock().expect("diophantine cache poisoned") = None;
    HNF_HITS.store(0, Ordering::Relaxed);
    HNF_MISSES.store(0, Ordering::Relaxed);
    DIO_HITS.store(0, Ordering::Relaxed);
    DIO_MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-wide, so tests in this module compare
    // *deltas* rather than absolute values (other tests may run
    // concurrently and bump them).

    #[test]
    fn cached_hnf_is_bit_identical() {
        let mats = [
            IMat::from_rows(&[vec![2, 4], vec![6, 8]]),
            IMat::from_rows(&[vec![3, 0, -1, 0], vec![2, 1, 0, -1]]),
            IMat::from_rows(&[vec![0, 0], vec![0, 0]]),
        ];
        for m in &mats {
            let cold = hermite_normal_form_cached(m);
            let warm = hermite_normal_form_cached(m);
            let reference = hermite_normal_form(m);
            assert_eq!(cold, reference);
            assert_eq!(warm, reference);
        }
    }

    #[test]
    fn cached_solve_is_bit_identical_including_none() {
        let cases = [
            (IMat::from_rows(&[vec![3, 5]]), vec![7]),
            (IMat::from_rows(&[vec![4, 6]]), vec![7]), // no integer solution
            (IMat::from_rows(&[vec![1, 2], vec![3, 4]]), vec![5, 11]),
            (IMat::zeros(2, 3), vec![1, 0]), // inconsistent
        ];
        for (m, c) in &cases {
            let cold = solve_linear_system_cached(m, c);
            let warm = solve_linear_system_cached(m, c);
            let reference = solve_linear_system(m, c);
            assert_eq!(cold, reference);
            assert_eq!(warm, reference);
        }
    }

    #[test]
    fn repeated_lookups_hit() {
        let m = IMat::from_rows(&[vec![11, 13], vec![17, 19]]);
        let before = solver_cache_stats();
        let _ = hermite_normal_form_cached(&m);
        let _ = hermite_normal_form_cached(&m);
        let _ = hermite_normal_form_cached(&m);
        let after = solver_cache_stats();
        assert!(after.hnf_hits >= before.hnf_hits + 2);
        assert!(after.hnf_misses >= before.hnf_misses);
        assert!(after.lookups() >= before.lookups() + 3);
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(SolverCacheStats::default().hit_rate(), 0.0);
        let s = SolverCacheStats {
            hnf_hits: 3,
            hnf_misses: 1,
            dio_hits: 0,
            dio_misses: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
