//! A keyed memo cache for Hermite-normal-form and diophantine solves.
//!
//! The analysis front end solves the dependence equation `i·A + a = j·B + b`
//! for every reference pair it screens, and the same coefficient matrices
//! recur constantly: re-analysis of the same program, the synthetic-corpus
//! classification (whose generator draws subscripts from a small coefficient
//! range), and every benchmark that re-runs an analysis.  Both solvers are
//! pure functions of their inputs, so their results are memoised here in a
//! process-wide cache keyed by the exact inputs
//! (`IMat` for [`hermite_normal_form_cached`], `(IMat, rhs)` for
//! [`solve_linear_system_cached`]).
//!
//! Cached results are **bit-identical** to uncached ones — the cache stores
//! the value computed by the uncached function on first miss and clones it
//! on every hit (verified by property tests over the synthetic corpus).
//! Hit/miss counters are kept per solver and registered with the
//! `rcp-trace` metrics registry (`intlin.cache.hnf.*` /
//! `intlin.cache.dio.*`), so benchmark reports read hit rates through one
//! [`rcp_trace::snapshot`] instead of a bespoke stats API;
//! [`reset_solver_cache`] clears both entries and counters for cold-start
//! measurements.
//!
//! The cache is bounded ([`CACHE_CAPACITY`] entries per solver).  Once full,
//! new results are still returned but no longer inserted — a deliberately
//! simple policy whose behaviour does not depend on timing, so cached and
//! uncached runs stay deterministic.

use crate::diophantine::DiophantineSolution;
use crate::hnf::{hermite_normal_form, HnfResult};
use crate::matrix::IMat;
use crate::vector::IVec;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of entries each solver cache retains.
pub const CACHE_CAPACITY: usize = 1 << 16;

/// A process-wide bounded memo cache: a lazily allocated map behind a
/// lock, hit/miss counters, and a capacity guard.  Once full, new results
/// are still returned but no longer inserted — a deliberately simple
/// policy whose behaviour does not depend on timing, so cached and
/// uncached runs stay deterministic.
///
/// Every memoisation static in the workspace is an instance of this type:
/// the two solver caches below and the Fourier–Motzkin emptiness cache in
/// `rcp-presburger`.
///
/// **Poison recovery.**  A panic that unwinds while a thread holds the
/// cache lock (a broken `Hash` impl detonating during lookup, an injected
/// fault, a budget trip) poisons the mutex.  Since the cache memoises pure
/// functions, a poisoned state carries no invariant worth protecting: the
/// lock is recovered clear-and-continue — entries are dropped, the poison
/// flag is cleared, and later lookups simply recompute.  One panicking
/// holder must not turn every later solve into a panic.
pub struct MemoCache<K, V> {
    map: Mutex<Option<HashMap<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
    failpoint: Option<(&'static str, rcp_guard::Stage)>,
}

impl<K: Eq + Hash, V: Clone> MemoCache<K, V> {
    /// An empty cache retaining at most `capacity` entries (usable in
    /// `static` position).
    pub const fn new(capacity: usize) -> Self {
        MemoCache {
            map: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
            failpoint: None,
        }
    }

    /// [`MemoCache::new`] with a named fault-injection site that fires
    /// *inside* the cache lock — the one place in the workspace where an
    /// injected panic genuinely poisons a mutex, which is exactly what the
    /// chaos campaign uses it for.
    pub const fn with_failpoint(
        capacity: usize,
        site: &'static str,
        stage: rcp_guard::Stage,
    ) -> Self {
        MemoCache {
            map: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
            failpoint: Some((site, stage)),
        }
    }

    /// Acquires the map lock, recovering a poisoned one clear-and-continue
    /// (see the type docs).
    fn lock_map(&self) -> std::sync::MutexGuard<'_, Option<HashMap<K, V>>> {
        match self.map.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.map.clear_poison();
                let mut guard = poisoned.into_inner();
                *guard = None;
                guard
            }
        }
    }

    /// Returns the cached value for `key`, computing and (capacity
    /// permitting) inserting it on a miss.  `compute` runs outside the
    /// lock, so concurrent misses may compute redundantly but never
    /// deadlock (and a panicking `compute` never poisons); the stored
    /// value is whichever insert wins.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        {
            let mut guard = self.lock_map();
            if let Some((site, stage)) = self.failpoint {
                rcp_guard::fail_point(site, stage);
            }
            let cache = guard.get_or_insert_with(HashMap::new);
            if let Some(hit) = cache.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return hit.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = compute();
        let mut guard = self.lock_map();
        let cache = guard.get_or_insert_with(HashMap::new);
        if cache.len() < self.capacity {
            cache.insert(key, result.clone());
        }
        result
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the underlying computation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Empties the cache and zeroes the counters (for cold-start timing).
    /// The counters may double as `rcp-trace` registry counters (see
    /// [`MemoCache::register_metrics`]); both views zero together.
    pub fn reset(&self) {
        *self.lock_map() = None;
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl<K, V> MemoCache<K, V> {
    /// Adopts this cache's hit/miss cells as `rcp-trace` registry counters
    /// `<prefix>.hits` / `<prefix>.misses`.  The cells stay the cache's
    /// own storage — one counter, two views — so [`MemoCache::reset`] and
    /// `rcp_trace::reset_metrics` zero the same numbers.  Requires a
    /// `static` cache (every memoisation cache in the workspace is one).
    pub fn register_metrics(&'static self, prefix: &str) {
        rcp_trace::register_external(&format!("{prefix}.hits"), &self.hits);
        rcp_trace::register_external(&format!("{prefix}.misses"), &self.misses);
    }
}

static HNF_CACHE: MemoCache<IMat, HnfResult> = MemoCache::with_failpoint(
    CACHE_CAPACITY,
    "intlin::cache-lookup",
    rcp_guard::Stage::IntSolve,
);
static DIO_CACHE: MemoCache<(IMat, IVec), Option<DiophantineSolution>> =
    MemoCache::new(CACHE_CAPACITY);

/// Registers the solver caches' hit/miss counters with the `rcp-trace`
/// metrics registry as `intlin.cache.hnf.{hits,misses}` and
/// `intlin.cache.dio.{hits,misses}`.  The cached entry points call this
/// lazily, so any run that touched a solver exposes its counters; call it
/// eagerly to make the names appear in a snapshot before first use.
pub fn register_cache_metrics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        HNF_CACHE.register_metrics("intlin.cache.hnf");
        DIO_CACHE.register_metrics("intlin.cache.dio");
    });
}

/// [`hermite_normal_form`] with process-wide
/// memoisation keyed by the input matrix.
///
/// Charges one `int-solve` work unit to the current budget guard (a hit
/// and a miss cost the same unit: budgets bound *lookups*, keeping guarded
/// runs deterministic regardless of cache warmth).
pub fn hermite_normal_form_cached(a: &IMat) -> HnfResult {
    register_cache_metrics();
    rcp_guard::tick(rcp_guard::Stage::IntSolve, 1);
    HNF_CACHE.get_or_compute(a.clone(), || {
        rcp_guard::fail_point("intlin::hnf", rcp_guard::Stage::IntSolve);
        hermite_normal_form(a)
    })
}

/// [`solve_linear_system`](crate::diophantine::solve_linear_system) with
/// process-wide memoisation keyed by `(matrix, rhs)`.
///
/// A miss reuses the HNF cache for the decomposition — the HNF depends
/// only on the coefficient matrix, so one decomposition serves every
/// right-hand side the analysis solves against it.  (The nested lookup
/// deliberately does not tick: a dio hit and a dio miss both charge
/// exactly one `int-solve` unit, see [`hermite_normal_form_cached`].)
pub fn solve_linear_system_cached(m: &IMat, c: &[i64]) -> Option<DiophantineSolution> {
    register_cache_metrics();
    rcp_guard::tick(rcp_guard::Stage::IntSolve, 1);
    DIO_CACHE.get_or_compute((m.clone(), c.to_vec()), || {
        rcp_guard::fail_point("intlin::dio", rcp_guard::Stage::IntSolve);
        let hnf = HNF_CACHE.get_or_compute(m.clone(), || {
            rcp_guard::fail_point("intlin::hnf", rcp_guard::Stage::IntSolve);
            hermite_normal_form(m)
        });
        crate::diophantine::solve_with_hnf(m, c, &hnf)
    })
}

/// Empties both caches and zeroes the counters (for cold-start timing).
/// The counters are the `intlin.cache.*` registry counters, so registry
/// reads see zero afterwards too.
pub fn reset_solver_cache() {
    HNF_CACHE.reset();
    DIO_CACHE.reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diophantine::solve_linear_system;

    // The counters are process-wide, so tests in this module compare
    // *deltas* rather than absolute values (other tests may run
    // concurrently and bump them).

    #[test]
    fn cached_hnf_is_bit_identical() {
        let mats = [
            IMat::from_rows(&[vec![2, 4], vec![6, 8]]),
            IMat::from_rows(&[vec![3, 0, -1, 0], vec![2, 1, 0, -1]]),
            IMat::from_rows(&[vec![0, 0], vec![0, 0]]),
        ];
        for m in &mats {
            let cold = hermite_normal_form_cached(m);
            let warm = hermite_normal_form_cached(m);
            let reference = hermite_normal_form(m);
            assert_eq!(cold, reference);
            assert_eq!(warm, reference);
        }
    }

    #[test]
    fn cached_solve_is_bit_identical_including_none() {
        let cases = [
            (IMat::from_rows(&[vec![3, 5]]), vec![7]),
            (IMat::from_rows(&[vec![4, 6]]), vec![7]), // no integer solution
            (IMat::from_rows(&[vec![1, 2], vec![3, 4]]), vec![5, 11]),
            (IMat::zeros(2, 3), vec![1, 0]), // inconsistent
        ];
        for (m, c) in &cases {
            let cold = solve_linear_system_cached(m, c);
            let warm = solve_linear_system_cached(m, c);
            let reference = solve_linear_system(m, c);
            assert_eq!(cold, reference);
            assert_eq!(warm, reference);
        }
    }

    #[test]
    fn repeated_lookups_hit_and_surface_in_the_registry() {
        let m = IMat::from_rows(&[vec![11, 13], vec![17, 19]]);
        register_cache_metrics();
        let mark = rcp_trace::snapshot();
        let _ = hermite_normal_form_cached(&m);
        let _ = hermite_normal_form_cached(&m);
        let _ = hermite_normal_form_cached(&m);
        let delta = rcp_trace::snapshot().delta_since(&mark);
        assert!(delta.counter("intlin.cache.hnf.hits") >= 2);
        assert!(
            delta.counter("intlin.cache.hnf.hits") + delta.counter("intlin.cache.hnf.misses") >= 3
        );
    }

    // Regression for the mutex-poisoning fragility: a panic raised while a
    // thread holds the cache lock used to poison it, turning every later
    // solve into a `.lock().expect(...)` panic.  The key type below has a
    // `Hash` impl that detonates on demand — and `HashMap::get` hashes the
    // key *under the cache lock*, which is exactly where real-world broken
    // key impls (or injected faults) fire.
    #[derive(Clone, PartialEq, Eq)]
    struct Volatile {
        id: u64,
        armed: std::cell::Cell<bool>,
    }

    impl Volatile {
        fn calm(id: u64) -> Self {
            Volatile {
                id,
                armed: std::cell::Cell::new(false),
            }
        }

        fn bomb(id: u64) -> Self {
            Volatile {
                id,
                armed: std::cell::Cell::new(true),
            }
        }
    }

    impl Hash for Volatile {
        fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
            if self.armed.replace(false) {
                panic!("hash bomb {id}", id = self.id);
            }
            self.id.hash(state);
        }
    }

    #[test]
    fn poisoned_lock_recovers_and_cache_stays_usable() {
        let cache: MemoCache<Volatile, u64> = MemoCache::new(8);
        assert_eq!(cache.get_or_compute(Volatile::calm(1), || 10), 10);
        assert_eq!(
            cache.get_or_compute(Volatile::calm(1), || 99),
            10,
            "warm hit"
        );

        // Panic through a lookup while holding the lock: poisons the mutex.
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute(Volatile::bomb(2), || 20)
        }));
        assert!(boom.is_err(), "the hash bomb must unwind out of the lookup");

        // Clear-and-continue: the next lookup recovers the lock (entries
        // dropped, so it recomputes) and the cache memoises again after.
        assert_eq!(cache.get_or_compute(Volatile::calm(1), || 11), 11);
        assert_eq!(
            cache.get_or_compute(Volatile::calm(1), || 99),
            11,
            "reuse after recovery"
        );
        cache.reset(); // reset must also survive a recovered lock
    }

    #[test]
    fn panicking_compute_does_not_poison() {
        // `compute` runs outside the lock, so even an unrecovered mutex
        // would survive this; the test pins that property.
        let cache: MemoCache<u64, u64> = MemoCache::new(8);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute(7, || panic!("solver bug"))
        }));
        assert!(boom.is_err());
        assert_eq!(cache.get_or_compute(7, || 42), 42);
        assert_eq!(
            cache.get_or_compute(7, || 0),
            42,
            "memoises after the panic"
        );
    }

    #[test]
    fn solver_entry_points_charge_the_budget() {
        use rcp_guard::{BudgetSpec, Guard, Interrupt, Stage};
        let m = IMat::from_rows(&[vec![2, 3], vec![5, 7]]);
        let guard = Guard::new(BudgetSpec::unlimited().with_max_work(2));
        let outcome = rcp_guard::scope(&guard, || {
            rcp_guard::catch(|| {
                let _ = hermite_normal_form_cached(&m);
                let _ = solve_linear_system_cached(&m, &[1, 1]);
                let _ = hermite_normal_form_cached(&m); // third lookup trips
            })
        });
        match outcome {
            Err(Interrupt::Budget(b)) => {
                assert_eq!(b.stage, Stage::IntSolve);
                assert_eq!(b.limit, 2);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }
}
