//! Exact integer and rational linear algebra for dependence analysis.
//!
//! This crate is the arithmetic substrate of the recurrence-chain
//! partitioning library.  Everything that the paper's formalism needs from
//! "math" lives here:
//!
//! * [`mod@gcd`] — greatest common divisors, least common multiples and the
//!   extended Euclidean algorithm used to solve linear diophantine
//!   equations exactly,
//! * [`Rational`] — exact rational numbers over `i128`, used whenever the
//!   recurrence matrices `T = B·A⁻¹` or their inverses are not integral,
//! * [`IMat`] / [`RatMat`] — small dense integer and rational matrices with
//!   exact determinant (fraction-free Bareiss), rank, inverse and
//!   multiplication,
//! * [`hnf`] — the (row-style) Hermite normal form together with the
//!   unimodular transformation that produces it,
//! * [`diophantine`] — solvers for systems of linear diophantine equations
//!   `x·A = b`, returning a particular solution plus a lattice basis of the
//!   homogeneous solutions,
//! * [`cache`] — process-wide memoisation of HNF and diophantine solves
//!   (keyed by the exact matrix/right-hand side) with hit/miss counters
//!   surfaced through the `rcp-trace` metrics registry, so repeated
//!   analyses and corpus classification re-solve nothing.
//!
//! The library follows the paper's *row-vector* convention: iteration
//! vectors are row vectors and array subscripts are written `i·A + a`, so a
//! matrix with `m` rows maps an `m`-dimensional iteration vector to an
//! `n`-dimensional subscript vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod diophantine;
pub mod gcd;
pub mod hnf;
pub mod matrix;
pub mod rational;
pub mod vector;

pub use cache::{
    hermite_normal_form_cached, register_cache_metrics, reset_solver_cache,
    solve_linear_system_cached, MemoCache,
};
pub use diophantine::{solve_linear_system, DiophantineSolution};
pub use gcd::{ext_gcd, gcd, gcd_slice, lcm};
pub use hnf::{hermite_normal_form, HnfResult};
pub use matrix::{IMat, RatMat};
pub use rational::Rational;
pub use vector::{add, dot, floor_div, is_lex_positive, lex_cmp, neg, scale, sub, IVec};
