//! Example 4: dataflow partitioning of the NASA Cholesky kernel.
//!
//! The kernel has multiple pairs of coupled subscripts, so the
//! recurrence-chain branch of Algorithm 1 does not apply and the successive
//! dataflow partitioning is used instead.  At the paper's parameters
//! (`NMAT=250, M=4, N=40, NRHS=3`) this takes a few hundred partitioning
//! steps (the paper reports 238).
//!
//! Run with (small parameters by default, `--paper` for the full size):
//!
//! ```text
//! cargo run --release --example cholesky_dataflow [-- --paper]
//! ```

use recurrence_chains::core::dataflow_stage_sizes;
use recurrence_chains::depend::trace_dependence_graph;
use recurrence_chains::workloads::{example4_cholesky, CholeskyParams};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let params = if paper {
        CholeskyParams::paper()
    } else {
        CholeskyParams::small()
    };
    println!("Cholesky kernel, parameters {params:?}");

    let program = example4_cholesky().bind_params(&params.as_vec());
    println!(
        "{} statements, max nesting depth {}",
        program.statements().len(),
        program.max_depth()
    );

    // Exact memory-based dependence graph by sequential instrumentation.
    let graph = trace_dependence_graph(&program, &[]);
    println!(
        "{} statement instances, {} dependence edges",
        graph.n_instances(),
        graph.n_edges()
    );

    // Successive dataflow partitioning = longest-path layering.
    let stages = dataflow_stage_sizes(graph.n_instances(), &graph.edges);
    println!("dataflow partitioning finished in {} steps", stages.len());
    let widest = stages.iter().max().copied().unwrap_or(0);
    let narrow = stages.iter().filter(|&&s| s < 8).count();
    println!(
        "widest stage: {} instances; stages narrower than 8 instances: {}",
        widest, narrow
    );
    println!(
        "available parallelism (instances / steps): {:.1}",
        graph.n_instances() as f64 / stages.len().max(1) as f64
    );

    if paper {
        println!("(paper reports 238 partitioning steps at these parameters)");
    }
    // Print the first few stages so the growth of the frontier is visible.
    for (k, size) in stages.iter().take(10).enumerate() {
        println!("  stage {k:3}: {size} instances");
    }
}
