//! Regenerates the library-backed bundled `.loop` files from the canonical
//! pretty-printer, so `examples/loops/` can never drift from the Rust
//! workload definitions (`rcp_workloads`):
//!
//! ```text
//! cargo run --example export_loops
//! ```
//!
//! The hand-written SPEC-like nests (`lu.loop`, `jacobi1d.loop`, …) are
//! text-first and are *not* touched; `rcp fmt --write` keeps those
//! canonical instead.  A test in `rcp-workloads::loopfiles` asserts that
//! every library-backed file parses back to the exact library program, so
//! forgetting to re-run this exporter after editing a workload fails CI.

use recurrence_chains::lang::pretty;
use recurrence_chains::workloads;
use std::path::Path;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/loops");
    std::fs::create_dir_all(&dir).expect("create examples/loops");
    let programs = [
        ("example1.loop", workloads::example1()),
        ("example2.loop", workloads::example2()),
        ("example3.loop", workloads::example3()),
        ("figure2.loop", workloads::figure2()),
        ("cholesky.loop", workloads::example4_cholesky()),
        ("uniform_chain.loop", workloads::uniform_chain()),
    ];
    for (file, program) in programs {
        let path = dir.join(file);
        let text = pretty(&program);
        // Sanity: the exported text must parse back to the same program.
        let reparsed = recurrence_chains::lang::parse_program(&text)
            .unwrap_or_else(|e| panic!("{file}: exported text does not parse: {e}"));
        assert_eq!(reparsed, program, "{file}: round-trip mismatch");
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("write {file}: {e}"));
        println!("wrote {}", path.display());
    }
}
