//! Figure 2 as ASCII art: the one-dimensional loop `a(2I) = a(21-I)`, its
//! non-uniform dependences, the monotonic chain decomposition and the
//! resulting partition.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chain_visualizer
//! ```

use recurrence_chains::core::{monotonic_chains, DenseThreeSet};
use recurrence_chains::prelude::*;
use recurrence_chains::presburger::{DenseRelation, DenseSet};
use recurrence_chains::workloads::figure2;

fn main() {
    let program = figure2();
    println!("loop:\n{}", program.to_pseudo_code());

    let analysis = DependenceAnalysis::loop_level(&program);
    let (phi, relation) = analysis.bind_params(&[]);
    let phi = DenseSet::from_union(&phi);
    let rd = DenseRelation::from_relation(&relation);

    println!("direct dependences (i -> j, forward order):");
    for (src, dst) in rd.iter() {
        println!("  {:2} -> {:2}", src[0], dst[0]);
    }

    println!("\nmonotonic chains (Definition 1):");
    for chain in monotonic_chains(&rd) {
        let path: Vec<String> = chain.iterations.iter().map(|p| p[0].to_string()).collect();
        println!("  {}", path.join(" -> "));
    }

    let part = DenseThreeSet::compute(&phi, &rd);
    let show = |set: &DenseSet| -> String {
        set.iter()
            .map(|p| p[0].to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("\nthree-set partition:");
    println!("  P1 (independent + initial): {{{}}}", show(&part.p1));
    println!("  P2 (intermediate)         : {{{}}}", show(&part.p2));
    println!("  P3 (final)                : {{{}}}", show(&part.p3));

    // A one-line picture of the iteration space, matching figure 2 of the
    // paper: each iteration labelled by the partition it falls in.
    let mut row = String::new();
    for i in 1..=20 {
        let label = if part.p1.contains(&[i]) {
            '1'
        } else if part.p2.contains(&[i]) {
            '2'
        } else {
            '3'
        };
        row.push(label);
        row.push(' ');
    }
    println!("\niterations 1..20 labelled by partition: {row}");

    // Execute the partitioned schedule and verify it.
    let partition = concrete_partition(&analysis, &[]);
    let schedule = Schedule::from_partition(&analysis, &partition, "figure2-rec");
    let kernel = RefKernel::new(&program);
    let verdict = verify_schedule(&Schedule::sequential(&program, &[]), &schedule, &kernel, 2);
    println!(
        "\nschedule: {} phases, critical path {} (sequential is 20); verification {}",
        schedule.n_phases(),
        schedule.critical_path(),
        if verdict.passed() { "PASSED" } else { "FAILED" }
    );
}
