//! Quickstart: partition the paper's running example (Example 1) with
//! recurrence chains, print the generated pseudo-Fortran, and verify the
//! parallel schedule against the sequential loop.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use recurrence_chains::codegen::generate_listing;
use recurrence_chains::prelude::*;
use recurrence_chains::runtime::CostModel;
use recurrence_chains::workloads::example1;

fn main() {
    // ------------------------------------------------------------------
    // 1. The input loop (figure 1 of the paper):
    //        DO I1 = 1, N1
    //          DO I2 = 1, N2
    //            a(3*I1+1, 2*I1+I2-1) = a(I1+3, I2+1)
    // ------------------------------------------------------------------
    let program = example1();
    println!("input loop:\n{}", program.to_pseudo_code());

    // ------------------------------------------------------------------
    // 2. Exact dependence analysis: the loop is non-uniform.
    // ------------------------------------------------------------------
    let analysis = DependenceAnalysis::loop_level(&program);
    let uniformity = recurrence_chains::depend::classify_analysis(&analysis, &[10, 10]);
    println!("dependence classification at N1=N2=10: {uniformity:?}");

    // ------------------------------------------------------------------
    // 3. Symbolic recurrence-chain partitioning (works for unknown N1, N2).
    // ------------------------------------------------------------------
    let plan = symbolic_plan(&analysis).expect("Example 1 has one coupled pair, full rank");
    println!(
        "recurrence matrix T, offset u:\n{:?}\nu = {:?}",
        plan.recurrence.t, plan.recurrence.u
    );
    println!(
        "alpha = max(|det T|, |det T^-1|) = {}",
        plan.recurrence.alpha()
    );
    println!("\ngenerated code:\n{}", generate_listing(&plan, "example1"));

    // ------------------------------------------------------------------
    // 4. Concrete partition + executable schedule for N1=300, N2=1000
    //    (the evaluation parameters of the paper).
    // ------------------------------------------------------------------
    let params = [60i64, 80]; // keep the example fast; the bench uses 300 x 1000
    let partition = concrete_partition(&analysis, &params);
    let stats = partition.stats();
    println!(
        "concrete partition at N1={}, N2={}: {} phases, critical path {}, widest phase {}, {} iterations",
        params[0], params[1], stats.n_phases, stats.critical_path, stats.max_width, stats.total_iterations
    );

    let schedule = Schedule::from_partition(&analysis, &partition, "example1-rec");
    let sequential = Schedule::sequential(&program, &params);

    // ------------------------------------------------------------------
    // 5. Verify: the parallel schedule computes the same array contents.
    // ------------------------------------------------------------------
    let kernel = RefKernel::new(&program);
    let verdict = verify_schedule(&sequential, &schedule, &kernel, 4);
    println!(
        "verification against sequential execution: {}",
        if verdict.passed() { "PASSED" } else { "FAILED" }
    );

    // ------------------------------------------------------------------
    // 6. Modelled speedups (the container has one CPU; the cost model
    //    carries the multi-thread story, see DESIGN.md).
    // ------------------------------------------------------------------
    let model = CostModel::default();
    print!("modelled speedup (REC):");
    for threads in 1..=4 {
        print!("  {}T = {:.2}", threads, model.speedup(&schedule, threads));
    }
    println!();
}
