//! Quickstart: drive the paper's running example (Example 1) through the
//! staged session pipeline — plan, partition, schedule, verify, measure —
//! and compare every registered partitioning scheme on the way.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use recurrence_chains::prelude::*;
use recurrence_chains::runtime::CostModel;

fn main() -> Result<(), RcpError> {
    // ------------------------------------------------------------------
    // 1. One Config, one Session: parameters, threads, scheme selection
    //    all live here instead of per-call arguments.
    // ------------------------------------------------------------------
    let session = Session::with_config(
        Config::new()
            .with_param("N1", 60)
            .with_param("N2", 80)
            .with_threads(4),
    );

    // ------------------------------------------------------------------
    // 2. Analyzed: the bundled example1.loop (figure 1 of the paper):
    //        DO I1 = 1, N1
    //          DO I2 = 1, N2
    //            a(3*I1+1, 2*I1+I2-1) = a(I1+3, I2+1)
    // ------------------------------------------------------------------
    let analyzed = session.bundled("example1")?;
    println!("input loop:\n{}", analyzed.program().to_pseudo_code());

    // ------------------------------------------------------------------
    // 3. Planned: the compile-time recurrence-chain plan (works for
    //    unknown N1, N2).  A fallback would be a typed error saying why.
    // ------------------------------------------------------------------
    let planned = analyzed.plan()?;
    let recurrence = &planned.plan().recurrence;
    println!(
        "recurrence matrix T, offset u:\n{:?}\nu = {:?}",
        recurrence.t, recurrence.u
    );
    println!("alpha = max(|det T|, |det T^-1|) = {}", recurrence.alpha());
    println!("\ngenerated code:\n{}", planned.listing());

    // ------------------------------------------------------------------
    // 4. Partitioned: the concrete partition at the configured binding.
    //    The same Analyzed re-partitions for other bindings for free.
    // ------------------------------------------------------------------
    let partition = analyzed.partition()?;
    let stats = partition.stats();
    println!(
        "concrete partition at {:?}: {} phases, critical path {}, widest phase {}, {} iterations",
        partition.values(),
        stats.n_phases,
        stats.critical_path,
        stats.max_width,
        stats.total_iterations
    );

    // ------------------------------------------------------------------
    // 5. Scheduled: execute and verify against the sequential loop.
    // ------------------------------------------------------------------
    let scheduled = partition.schedule()?;
    let verdict = scheduled.verify();
    println!(
        "verification against sequential execution: {}",
        if verdict.passed() { "PASSED" } else { "FAILED" }
    );

    // ------------------------------------------------------------------
    // 6. The Partitioner registry: every scheme over the same artifact,
    //    modelled at 4 threads (the container has one CPU; the cost model
    //    carries the multi-thread story, see DESIGN.md).
    // ------------------------------------------------------------------
    let model = CostModel::default();
    println!("\nmodelled speedup at 4 threads, by scheme:");
    for scheme in registry() {
        match partition.schedule_with(scheme.name()) {
            Ok(s) => println!(
                "  {:<18} {:>5.2}x   ({} phases)",
                scheme.name(),
                model.speedup(s.schedule(), 4),
                s.schedule().n_phases()
            ),
            Err(e) => println!("  {:<18} n/a     ({e})", scheme.name()),
        }
    }
    Ok(())
}
