//! The motivating statistics of §1, reproduced on a synthetic loop corpus.
//!
//! The paper measures SPECfp95 ("more than 46% of the nested loops contain
//! non-uniform data dependences"); the benchmark sources are not available
//! here, so the same classification pipeline runs over a synthetic corpus
//! with a controllable fraction of coupled subscripts (see DESIGN.md,
//! substitutions).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example corpus_survey
//! ```

use recurrence_chains::workloads::{corpus_statistics, CorpusConfig};

fn main() {
    println!("fraction of generated references with coupled subscripts  ->  observed loop classification");
    println!(
        "{:>8}  {:>8}  {:>10}  {:>12}  {:>10}",
        "coupled", "loops", "dependent", "non-uniform", "uniform"
    );
    for coupled_fraction in [0.0, 0.25, 0.45, 0.75, 1.0] {
        let stats = corpus_statistics(&CorpusConfig {
            n_loops: 150,
            coupled_fraction,
            extent: 12,
            seed: 2004,
        });
        println!(
            "{:>8.2}  {:>8}  {:>10}  {:>12}  {:>10}",
            coupled_fraction,
            stats.total_loops,
            stats.dependent_loops,
            stats.non_uniform_loops,
            stats.uniform_loops
        );
    }
    let stats = corpus_statistics(&CorpusConfig::default());
    println!(
        "\nat the default mix ({}% coupled references): {:.1}% of the loops have non-uniform dependences",
        (CorpusConfig::default().coupled_fraction * 100.0) as i64,
        stats.non_uniform_fraction() * 100.0,
    );
    println!("(the paper reports >46% of SPECfp95 loop nests; the corpus substitutes for the benchmark sources)");
}
