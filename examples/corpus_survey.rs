//! The motivating statistics of §1, reproduced on a synthetic loop corpus.
//!
//! The paper measures SPECfp95 ("more than 46% of the nested loops contain
//! non-uniform data dependences"); the benchmark sources are not available
//! here, so the same classification pipeline runs over a synthetic corpus
//! with a controllable fraction of coupled subscripts (see DESIGN.md,
//! substitutions).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example corpus_survey
//! ```

use recurrence_chains::depend::{classify_uniformity, DependenceAnalysis, Granularity};
use recurrence_chains::presburger::{DenseRelation, DenseSet};
use recurrence_chains::workloads::{corpus_statistics, CorpusConfig, BUNDLED_LOOPS};

/// Classifies one bundled `.loop` workload at its survey parameters.
/// Deep many-statement programs (the Cholesky kernel) are reported by
/// shape only: their statement-level pair space makes exact symbolic
/// analysis too slow for a survey.
fn survey_bundled() {
    println!("\nbundled .loop workloads (examples/loops/*.loop) at survey parameters:");
    println!(
        "{:>14}  {:>6}  {:>6}  {:>10}  {:>12}  {:>12}",
        "workload", "depth", "stmts", "nest", "dependences", "class"
    );
    for bundled in BUNDLED_LOOPS {
        let program = bundled.program();
        let stmts = program.statements().len();
        let nest = if program.is_perfect_nest() {
            "perfect"
        } else {
            "imperfect"
        };
        let (deps, class) = if stmts <= 4 {
            let granularity = if program.is_perfect_nest() {
                Granularity::LoopLevel
            } else {
                Granularity::StatementLevel
            };
            let analysis = DependenceAnalysis::analyze(&program, granularity);
            let values = bundled.survey_values();
            let (phi, rel) = analysis.bind_params(&values);
            let rd = DenseRelation::from_relation(&rel);
            let phi_d = DenseSet::from_union(&phi);
            (
                rd.len().to_string(),
                format!("{:?}", classify_uniformity(&rd, &phi_d)),
            )
        } else {
            ("-".into(), "(shape only)".into())
        };
        println!(
            "{:>14}  {:>6}  {:>6}  {:>10}  {:>12}  {:>12}",
            bundled.name,
            program.max_depth(),
            stmts,
            nest,
            deps,
            class
        );
    }
}

fn main() {
    println!("fraction of generated references with coupled subscripts  ->  observed loop classification");
    println!(
        "{:>8}  {:>8}  {:>10}  {:>12}  {:>10}",
        "coupled", "loops", "dependent", "non-uniform", "uniform"
    );
    for coupled_fraction in [0.0, 0.25, 0.45, 0.75, 1.0] {
        let stats = corpus_statistics(&CorpusConfig {
            n_loops: 150,
            coupled_fraction,
            extent: 12,
            seed: 2004,
        });
        println!(
            "{:>8.2}  {:>8}  {:>10}  {:>12}  {:>10}",
            coupled_fraction,
            stats.total_loops,
            stats.dependent_loops,
            stats.non_uniform_loops,
            stats.uniform_loops
        );
    }
    let stats = corpus_statistics(&CorpusConfig::default());
    println!(
        "\nat the default mix ({}% coupled references): {:.1}% of the loops have non-uniform dependences",
        (CorpusConfig::default().coupled_fraction * 100.0) as i64,
        stats.non_uniform_fraction() * 100.0,
    );
    println!("(the paper reports >46% of SPECfp95 loop nests; the corpus substitutes for the benchmark sources)");
    survey_bundled();
}
