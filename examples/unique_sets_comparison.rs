//! Example 2 (Ju & Chaudhary's loop): recurrence-chain partitioning versus
//! unique-set partitioning.
//!
//! The paper's claim (§4, Example 2 and §5): the unique-set method yields 5
//! partitions executed in sequence, one of them sequential, while the
//! recurrence-chain partitioning yields only 3 fully parallel partitions —
//! at `N = 12` the intermediate set is the single iteration `(2, 6)`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example unique_sets_comparison
//! ```

use recurrence_chains::baselines::unique_sets_schedule;
use recurrence_chains::prelude::*;
use recurrence_chains::presburger::{DenseRelation, DenseSet};
use recurrence_chains::runtime::CostModel;
use recurrence_chains::workloads::example2;

fn main() {
    let program = example2();
    println!("input loop:\n{}", program.to_pseudo_code());
    let n = 12i64;
    let analysis = DependenceAnalysis::loop_level(&program);

    // Recurrence-chain partitioning (REC).
    let partition = concrete_partition(&analysis, &[n]);
    if let ConcretePartition::RecurrenceChains { three_set, .. } = &partition {
        let p2: Vec<String> = three_set
            .p2
            .iter()
            .map(|p| format!("({}, {})", p[0], p[1]))
            .collect();
        println!("REC intermediate set at N={n}: {{{}}}", p2.join(", "));
    }
    let rec = Schedule::from_partition(&analysis, &partition, "example2-rec");

    // Unique-set partitioning (UNIQUE).
    let (phi, rel) = analysis.bind_params(&[n]);
    let phi_d = DenseSet::from_union(&phi);
    let rd = DenseRelation::from_relation(&rel);
    let unique = unique_sets_schedule(&analysis, &phi_d, &rd, "example2-unique")
        .expect("example 2's class graph is acyclic");

    println!(
        "REC   : {} phases, critical path {} work items",
        rec.n_phases(),
        rec.critical_path()
    );
    println!(
        "UNIQUE: {} phases, critical path {} work items",
        unique.n_phases(),
        unique.critical_path()
    );

    // Both must compute what the sequential loop computes.
    let kernel = RefKernel::new(&program);
    let sequential = Schedule::sequential(&program, &[n]);
    for (name, schedule) in [("REC", &rec), ("UNIQUE", &unique)] {
        let verdict = verify_schedule(&sequential, schedule, &kernel, 4);
        println!(
            "{name} verification: {}",
            if verdict.passed() { "PASSED" } else { "FAILED" }
        );
    }

    // Modelled speedups, 1–4 threads (figure 3, Example 2 plot).
    let model = CostModel::default();
    for (name, schedule) in [("REC", &rec), ("UNIQUE", &unique)] {
        print!("{name:6} modelled speedup:");
        for threads in 1..=4 {
            print!("  {}T = {:.2}", threads, model.speedup(schedule, threads));
        }
        println!();
    }
}
