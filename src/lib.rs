//! # recurrence-chains
//!
//! A reproduction, as a Rust library, of *"Non-Uniform Dependences
//! Partitioned by Recurrence Chains"* (Yijun Yu & Erik H. D'Hollander,
//! ICPP 2004): finding outermost loop parallelism in loops whose data
//! dependences have **non-uniform distances** by organising the dependent
//! iterations into lexicographically ordered monotonic *recurrence chains*.
//!
//! The workspace is organised bottom-up; this facade crate re-exports every
//! layer under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`trace`] | `rcp-trace` | thread-aware span tracing + the unified metrics registry (counters/gauges/histograms), near-zero cost when disabled |
//! | [`guard`] | `rcp-guard` | cooperative resource budgets (work units + deadlines), typed budget-exhaustion, fault-injection failpoints |
//! | [`pool`] | `rcp-pool` | dependency-free `par_map` thread-pool facility shared by analysis and runtime |
//! | [`intlin`] | `rcp-intlin` | exact rational/integer linear algebra, Hermite normal form, diophantine solvers (memoised via `intlin::cache`) |
//! | [`presburger`] | `rcp-presburger` | Omega-library-style integer sets, relations, Fourier-Motzkin, dense enumeration |
//! | [`loopir`] | `rcp-loopir` | affine loop-nest IR, statement-level unified index space, access maps |
//! | [`lang`] | `rcp-lang` | the textual `.loop` language: parser with line/column diagnostics, canonical pretty-printer |
//! | [`depend`] | `rcp-depend` | exact dependence relations, distance sets, uniformity classification, screening tests |
//! | [`core`] | `rcp-core` | three-set partitioning, recurrence chains, dataflow partitioning, Algorithm 1, Theorem 1 |
//! | [`codegen`] | `rcp-codegen` | executable schedules and pseudo-Fortran DOALL/WHILE listings |
//! | [`runtime`] | `rcp-runtime` | array store, kernels, sequential/parallel executors, calibrated cost model |
//! | [`baselines`] | `rcp-baselines` | PDM, PL, UNIQUE, DOACROSS, inner-loop parallelization comparators |
//! | [`workloads`] | `rcp-workloads` | the paper's example loops 1–4, figure-2 loop, synthetic corpus, bundled `.loop` files |
//! | [`session`] | `rcp-session` | the staged `Session` pipeline API, the `Partitioner` scheme registry, typed `RcpError`s |
//! | [`serve`] | `rcp-serve` | `rcpd`, the partition-as-a-service daemon: HTTP/1.1 server, bounded worker pool, content-addressed analysis cache, thin client |
//! | [`cli`] | `rcp-cli` | the `rcp` binary's subcommands (`parse`, `analyze`, `partition`, `codegen`, `run`, `bench`, `stats`, `schemes`, `fuzz`, `serve`, `remote`) |
//! | [`fuzz`] | `rcp-fuzz` | differential fuzzing: seeded nest generator, cross-scheme execution oracle, counterexample minimiser, chaos campaigns (pipeline + server) |
//!
//! ## Quick start
//!
//! The staged session pipeline is the canonical way to drive the system:
//! configure once, analyse once, then re-partition, schedule, and verify
//! as many bindings and schemes as needed.
//!
//! ```
//! use recurrence_chains::prelude::*;
//!
//! // The paper's running example (figure 1 / Example 1), bundled as
//! // examples/loops/example1.loop.
//! let session = Session::with_config(
//!     Config::new().with_param("N1", 10).with_param("N2", 10).with_threads(4),
//! );
//! let analyzed = session.bundled("example1")?;
//!
//! // Compile-time (symbolic) plan: three-set partition + recurrence T, u.
//! // A fallback would be a typed error saying *why* (PlanUnavailable).
//! let planned = analyzed.plan()?;
//! assert_eq!(
//!     planned.plan().recurrence.alpha(),
//!     recurrence_chains::intlin::Rational::from_int(3),
//! );
//!
//! // Concrete partition at the configured parameters; the same Analyzed
//! // serves other bindings without re-running the analysis.
//! let partition = analyzed.partition()?;
//! assert_eq!(partition.stats().total_iterations, 100);
//!
//! // Schedule with the paper's scheme (any registry scheme works:
//! // recurrence-chains, pdm, pl, unique, doacross, inner-parallel) and
//! // verify the parallel execution against the sequential loop.
//! let scheduled = partition.schedule()?;
//! assert!(scheduled.verify().passed());
//! # Ok::<(), recurrence_chains::session::RcpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rcp_baselines as baselines;
pub use rcp_cli as cli;
pub use rcp_codegen as codegen;
pub use rcp_core as core;
pub use rcp_depend as depend;
pub use rcp_fuzz as fuzz;
pub use rcp_guard as guard;
pub use rcp_intlin as intlin;
pub use rcp_lang as lang;
pub use rcp_loopir as loopir;
pub use rcp_pool as pool;
pub use rcp_presburger as presburger;
pub use rcp_runtime as runtime;
pub use rcp_serve as serve;
pub use rcp_session as session;
pub use rcp_trace as trace;
pub use rcp_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use rcp_codegen::{Phase, Schedule, WorkItem};
    pub use rcp_core::{
        concrete_partition, symbolic_plan, ConcretePartition, PlanUnavailable, Recurrence,
        Strategy, ThreeSetPartition,
    };
    pub use rcp_depend::{
        AnalysisOptions, DependenceAnalysis, Granularity, ScreenConfig, Uniformity,
    };
    pub use rcp_guard::BudgetSpec;
    pub use rcp_loopir::{ArrayRef, Program};
    pub use rcp_runtime::{
        execute_schedule, execute_sequential, verify_schedule, ArrayStore, CostModel,
        ParallelExecutor, RefKernel,
    };
    pub use rcp_session::{
        registry, scheme_names, Analyzed, Config, DegradationLevel, DegradationReport,
        GranularityChoice, Partitioned, Partitioner, Planned, RcpError, Scheduled, Session,
    };
}
