//! # recurrence-chains
//!
//! A reproduction, as a Rust library, of *"Non-Uniform Dependences
//! Partitioned by Recurrence Chains"* (Yijun Yu & Erik H. D'Hollander,
//! ICPP 2004): finding outermost loop parallelism in loops whose data
//! dependences have **non-uniform distances** by organising the dependent
//! iterations into lexicographically ordered monotonic *recurrence chains*.
//!
//! The workspace is organised bottom-up; this facade crate re-exports every
//! layer under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`pool`] | `rcp-pool` | dependency-free `par_map` thread-pool facility shared by analysis and runtime |
//! | [`intlin`] | `rcp-intlin` | exact rational/integer linear algebra, Hermite normal form, diophantine solvers (memoised via `intlin::cache`) |
//! | [`presburger`] | `rcp-presburger` | Omega-library-style integer sets, relations, Fourier-Motzkin, dense enumeration |
//! | [`loopir`] | `rcp-loopir` | affine loop-nest IR, statement-level unified index space, access maps |
//! | [`lang`] | `rcp-lang` | the textual `.loop` language: parser with line/column diagnostics, canonical pretty-printer |
//! | [`depend`] | `rcp-depend` | exact dependence relations, distance sets, uniformity classification, screening tests |
//! | [`core`] | `rcp-core` | three-set partitioning, recurrence chains, dataflow partitioning, Algorithm 1, Theorem 1 |
//! | [`codegen`] | `rcp-codegen` | executable schedules and pseudo-Fortran DOALL/WHILE listings |
//! | [`runtime`] | `rcp-runtime` | array store, kernels, sequential/parallel executors, calibrated cost model |
//! | [`baselines`] | `rcp-baselines` | PDM, PL, UNIQUE, DOACROSS, inner-loop parallelization comparators |
//! | [`workloads`] | `rcp-workloads` | the paper's example loops 1–4, figure-2 loop, synthetic corpus, bundled `.loop` files |
//! | [`cli`] | `rcp-cli` | the `rcp` binary's subcommands (`parse`, `analyze`, `partition`, `codegen`, `run`, `bench`) |
//!
//! ## Quick start
//!
//! ```
//! use recurrence_chains::prelude::*;
//!
//! // The paper's running example (figure 1 / Example 1).
//! let program = recurrence_chains::workloads::example1();
//! let analysis = DependenceAnalysis::loop_level(&program);
//!
//! // Compile-time (symbolic) plan: three-set partition + recurrence T, u.
//! let plan = symbolic_plan(&analysis).expect("single coupled pair with full-rank matrices");
//! assert_eq!(plan.recurrence.alpha(), recurrence_chains::intlin::Rational::from_int(3));
//!
//! // Concrete partition and executable schedule for N1 = N2 = 10.
//! let partition = concrete_partition(&analysis, &[10, 10]);
//! let schedule = Schedule::from_partition(&analysis, &partition, "example1-rec");
//!
//! // The parallel schedule computes exactly what the sequential loop computes.
//! let kernel = RefKernel::new(&program);
//! let sequential = Schedule::sequential(&program, &[10, 10]);
//! let verdict = verify_schedule(&sequential, &schedule, &kernel, 4);
//! assert!(verdict.passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rcp_baselines as baselines;
pub use rcp_cli as cli;
pub use rcp_codegen as codegen;
pub use rcp_core as core;
pub use rcp_depend as depend;
pub use rcp_intlin as intlin;
pub use rcp_lang as lang;
pub use rcp_loopir as loopir;
pub use rcp_pool as pool;
pub use rcp_presburger as presburger;
pub use rcp_runtime as runtime;
pub use rcp_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use rcp_codegen::{Phase, Schedule, WorkItem};
    pub use rcp_core::{
        concrete_partition, symbolic_plan, ConcretePartition, Recurrence, Strategy,
        ThreeSetPartition,
    };
    pub use rcp_depend::{DependenceAnalysis, Granularity, Uniformity};
    pub use rcp_loopir::{ArrayRef, Program};
    pub use rcp_runtime::{
        execute_schedule, execute_sequential, verify_schedule, ArrayStore, CostModel,
        ParallelExecutor, RefKernel,
    };
}
