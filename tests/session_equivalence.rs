//! The session pipeline is bit-identical to the legacy free-function
//! pipeline.
//!
//! The staged `Session` API (PR 4) replaced hand-wired calls to
//! `DependenceAnalysis::analyze` / `bind_params` / dense enumeration /
//! `concrete_partition_from_dense` / `Schedule::from_partition` with
//! memoised stages.  These property tests prove the refactor changed
//! *nothing observable*: on the paper's examples, the Cholesky kernel and
//! 200 random corpus nests, both paths produce the same dependence
//! relation, the same enumerated space, the same three sets and chains,
//! the same schedule, and the same executed array store — at every tested
//! thread count.

use recurrence_chains::codegen::Schedule;
use recurrence_chains::core::{concrete_partition_from_dense, ConcretePartition};
use recurrence_chains::depend::{DependenceAnalysis, Granularity};
use recurrence_chains::loopir::Program;
use recurrence_chains::presburger::{DenseRelation, DenseSet};
use recurrence_chains::runtime::{execute_schedule, execute_sequential, RefKernel};
use recurrence_chains::session::{Config, Session};
use recurrence_chains::workloads::{
    example1, example2, example3, example4_cholesky, figure2, random_nest, SmallRng,
};

/// The legacy path, exactly as `rcp-cli`, the examples and the bench
/// harness wired it by hand before the session API existed.
struct Legacy {
    analysis: DependenceAnalysis,
    phi: DenseSet,
    rd: DenseRelation,
    partition: ConcretePartition,
    schedule: Schedule,
}

fn legacy_pipeline(program: &Program, values: &[i64], granularity: Granularity) -> Legacy {
    // Programs whose subscripts mention parameters (Cholesky) were always
    // bound before analysis in the legacy flow too (see `ex4_dataflow`).
    let analysis = DependenceAnalysis::analyze(program, granularity);
    let (phi_u, rel) = analysis.bind_params(values);
    let phi = DenseSet::from_union(&phi_u);
    let rd = DenseRelation::from_relation(&rel);
    let partition = concrete_partition_from_dense(&analysis, &phi, &rd);
    let schedule = Schedule::from_partition(&analysis, &partition, "equiv");
    Legacy {
        analysis,
        phi,
        rd,
        partition,
        schedule,
    }
}

fn pairs(rd: &DenseRelation) -> Vec<(Vec<i64>, Vec<i64>)> {
    rd.iter().cloned().collect()
}

/// Asserts the session stage equals the legacy artifacts piece for piece,
/// then replays both schedules on 1, 2 and 4 threads and compares the
/// stores element for element.
fn assert_equivalent(name: &str, program: &Program, values: &[(&str, i64)]) {
    let session = Session::with_config(Config::new().with_params(values));
    let analyzed = session
        .load(program.clone())
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let stage = analyzed
        .partition()
        .unwrap_or_else(|e| panic!("{name}: {e}"));

    // Legacy runs on the same inputs the session resolved: the original
    // program for symbolic analyses, the parameter-bound program (with no
    // remaining parameters) for deferred ones.
    let legacy = legacy_pipeline(
        stage.runtime_program(),
        stage.runtime_values(),
        analyzed.granularity(),
    );

    // 1. The exact symbolic relation is identical.
    assert_eq!(
        format!("{:?}", stage.analysis().relation),
        format!("{:?}", legacy.analysis.relation),
        "{name}: symbolic relations diverge"
    );
    // 2. The enumerated space and dense relation are identical.
    assert_eq!(stage.phi(), &legacy.phi, "{name}: iteration spaces diverge");
    assert_eq!(
        pairs(stage.rd()),
        pairs(&legacy.rd),
        "{name}: dependence relations diverge"
    );
    // 3. The Algorithm-1 partition is identical: strategy, three sets,
    //    chain count and content, dataflow stages.
    match (stage.partition(), &legacy.partition) {
        (
            ConcretePartition::RecurrenceChains {
                p1: sp1,
                chains: sc,
                p3: sp3,
                three_set: st,
            },
            ConcretePartition::RecurrenceChains {
                p1: lp1,
                chains: lc,
                p3: lp3,
                three_set: lt,
            },
        ) => {
            assert_eq!(sp1, lp1, "{name}: P1 diverges");
            assert_eq!(sp3, lp3, "{name}: P3 diverges");
            assert_eq!(st.p2, lt.p2, "{name}: P2 diverges");
            assert_eq!(sc.len(), lc.len(), "{name}: chain count diverges");
            assert_eq!(sc, lc, "{name}: chains diverge");
        }
        (
            ConcretePartition::Dataflow { stages: ss },
            ConcretePartition::Dataflow { stages: ls },
        ) => {
            assert_eq!(ss.stages, ls.stages, "{name}: dataflow stages diverge");
        }
        (s, l) => panic!(
            "{name}: strategies diverge (session {:?}, legacy {:?})",
            s.strategy(),
            l.strategy()
        ),
    }
    // 4. The schedule is identical phase for phase, item for item.
    let scheduled = stage
        .schedule_with("recurrence-chains")
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(
        scheduled.schedule().phases,
        legacy.schedule.phases,
        "{name}: schedules diverge"
    );
    // 5. Replay: the session's parallel execution equals the legacy
    //    sequential store at every thread count.
    let kernel = RefKernel::new(stage.runtime_program());
    let sequential = Schedule::sequential(stage.runtime_program(), stage.runtime_values());
    let reference = execute_sequential(&sequential, &kernel);
    for threads in [1usize, 2, 4] {
        let result = execute_schedule(scheduled.schedule(), &kernel, threads);
        assert!(
            result.races.is_empty(),
            "{name}: races at {threads} threads"
        );
        assert!(
            reference.diff(&result.store, 1e-9).is_empty(),
            "{name}: stores diverge at {threads} threads"
        );
    }
}

#[test]
fn session_equals_legacy_on_the_paper_examples() {
    assert_equivalent("example1", &example1(), &[("N1", 10), ("N2", 10)]);
    assert_equivalent("example1-rect", &example1(), &[("N1", 12), ("N2", 8)]);
    assert_equivalent("example2", &example2(), &[("N", 12)]);
    assert_equivalent("example3", &example3(), &[("N", 12)]);
    assert_equivalent("figure2", &figure2(), &[]);
}

#[test]
fn session_equals_legacy_on_cholesky() {
    // Deferred analysis: subscripts mention NMAT/M/N/NRHS, so the session
    // binds the program before analysing — the result must still match the
    // legacy bind-first pipeline exactly.
    assert_equivalent(
        "cholesky",
        &example4_cholesky(),
        &[("NMAT", 2), ("M", 2), ("N", 6), ("NRHS", 1)],
    );
}

#[test]
fn session_equals_legacy_on_200_corpus_nests() {
    let mut rng = SmallRng::seed_from_u64(42);
    for id in 0..200 {
        let nest = random_nest(&mut rng, 0.45, id);
        assert_equivalent(&format!("corpus-{id}"), &nest, &[("N", 10)]);
    }
}

#[test]
fn repartitioning_reuses_the_analysis_and_matches_fresh_sessions() {
    // One Analyzed, many bindings: each re-partition must equal a fresh
    // single-binding session (which itself equals legacy, by the tests
    // above).
    let analyzed = Session::new().load(example1()).unwrap();
    for (n1, n2) in [(6i64, 6i64), (10, 10), (12, 7), (9, 14)] {
        let stage = analyzed
            .partition_with(&[("N1".into(), n1), ("N2".into(), n2)])
            .unwrap();
        let fresh = Session::with_config(Config::new().with_params(&[("N1", n1), ("N2", n2)]))
            .load(example1())
            .unwrap()
            .partition()
            .unwrap();
        assert_eq!(stage.phi(), fresh.phi(), "N1={n1} N2={n2}");
        assert_eq!(pairs(stage.rd()), pairs(fresh.rd()), "N1={n1} N2={n2}");
        assert_eq!(
            format!("{:?}", stage.partition()),
            format!("{:?}", fresh.partition()),
            "N1={n1} N2={n2}"
        );
    }
    assert_eq!(analyzed.cached_partitions(), 4);
}

#[test]
fn sharded_session_analysis_equals_the_single_threaded_legacy_analysis() {
    // `Config::with_analysis_threads` pins the analysis sharding; every
    // count must reproduce the single-threaded legacy relation exactly
    // (the dense pipeline downstream is covered by the tests above).
    let reference = format!(
        "{:?}",
        DependenceAnalysis::analyze(&example1(), Granularity::LoopLevel).relation
    );
    for threads in [1usize, 2, 4] {
        let analyzed = Session::with_config(
            Config::new()
                .with_params(&[("N1", 10), ("N2", 10)])
                .with_analysis_threads(threads),
        )
        .load(example1())
        .unwrap();
        assert_eq!(
            format!("{:?}", analyzed.symbolic_analysis().unwrap().relation),
            reference,
            "analysis sharded over {threads} thread(s) diverges"
        );
    }
}
