//! Properties of the fuzz generator: every emitted program is accepted by
//! `rcp-lang` verbatim (the fuzzer can never trip the parser instead of
//! the analysis), and generation plus the whole campaign are deterministic
//! from the seed.

use recurrence_chains::fuzz::{case_seed, generate, run_campaign, CampaignConfig};
use recurrence_chains::lang::{parse_program, pretty};

/// Satellite property: `parse(pretty(generate(seed))) ==
/// canonicalize(generate(seed))` over 200 seeds.
#[test]
fn generator_emits_only_parseable_canonical_programs() {
    for seed in 0..200u64 {
        let case = generate(seed, 0);
        let printed = pretty(&case.program);
        let reparsed = parse_program(&printed).unwrap_or_else(|e| {
            panic!("seed {seed}: generated program does not parse: {e}\n{printed}")
        });
        assert_eq!(
            reparsed,
            case.program.canonicalized(),
            "seed {seed}: parse(pretty(p)) != canonicalize(p)\n{printed}"
        );
        case.program
            .check_variables()
            .unwrap_or_else(|e| panic!("seed {seed}: unbound variable: {e}"));
    }
}

#[test]
fn case_seeds_are_independent_of_count() {
    // Case 7 of a 10-case campaign and case 7 of a 50-case campaign are the
    // same nest: ids map to seeds without looking at the campaign size.
    assert_eq!(case_seed(0xC0FFEE, 7), case_seed(0xC0FFEE, 7));
    let a = generate(0xC0FFEE, 7);
    let b = generate(0xC0FFEE, 7);
    assert_eq!(a.program, b.program);
    assert_ne!(
        generate(0xC0FFEE, 7).program,
        generate(0xC0FFEE, 8).program,
        "different case ids should draw different nests"
    );
}

#[test]
fn campaigns_are_deterministic_and_clean_on_the_pinned_seed() {
    let config = CampaignConfig {
        seed: 0xC0FFEE,
        count: 10,
        minimize: false,
    };
    let first = run_campaign(&config);
    let second = run_campaign(&config);
    assert!(
        first.errors.is_empty(),
        "generated nests must load: {:?}",
        first.errors
    );
    assert!(
        first.counterexamples.is_empty(),
        "pinned-seed campaign must be discrepancy-free: {:?}",
        first
            .counterexamples
            .iter()
            .map(|c| (&c.discrepancy.scheme, c.case_id))
            .collect::<Vec<_>>()
    );
    for (a, b) in first.stats.iter().zip(second.stats.iter()) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(
            a.passed, b.passed,
            "{}: passed tally must be stable",
            a.scheme
        );
        assert_eq!(
            a.under_synchronised, b.under_synchronised,
            "{}: under-synchronised tally must be stable",
            a.scheme
        );
        assert_eq!(
            a.not_applicable, b.not_applicable,
            "{}: not-applicable tally must be stable",
            a.scheme
        );
    }
    // The default scheme must actually be exercised by the campaign.
    let rc = first
        .stats
        .iter()
        .find(|s| s.scheme == "recurrence-chains")
        .expect("default scheme is registered");
    assert!(rc.passed > 0, "recurrence-chains should pass some cases");
}
