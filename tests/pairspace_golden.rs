//! Golden pair-space counts of the full statement-level Cholesky
//! analysis at paper scale (NMAT = 250, M = 4, N = 40, NRHS = 3).
//!
//! The pair space and its screening outcome are fully deterministic —
//! 98 same-array pairs, a third of them box-disjoint, 40 chain classes —
//! so any drift (a screen silently weakening, a pair enumeration change,
//! a relation piece appearing or vanishing) fails this diff.  CI runs the
//! `scaling` experiment for the wall-clock side; this test pins the
//! counts.

use recurrence_chains::depend::{AnalysisOptions, DependenceAnalysis, Granularity};
use recurrence_chains::workloads::{example4_cholesky, CholeskyParams};

#[test]
fn cholesky_pair_space_counts_match_the_golden_file() {
    let params = CholeskyParams::paper(); // NMAT=250, M=4, N=40, NRHS=3
    let bound = example4_cholesky().bind_params(&params.as_vec());
    let analysis = DependenceAnalysis::with_options(
        &bound,
        &AnalysisOptions::new(Granularity::StatementLevel),
    );
    let s = analysis.screen;
    let actual = format!(
        "{{\n  \"nmat\": {},\n  \"n_pairs\": {},\n  \"by_gcd\": {},\n  \"by_bbox\": {},\n  \
         \"by_solver\": {},\n  \"shared_verdicts\": {},\n  \"n_classes\": {},\n  \
         \"n_shape_buckets\": {},\n  \"survivors\": {},\n  \"relation_pieces\": {}\n}}\n",
        params.nmat,
        s.n_pairs,
        s.by_gcd,
        s.by_bbox,
        s.by_solver,
        s.shared_verdicts,
        s.n_classes,
        s.n_shape_buckets,
        s.survivors(),
        analysis.relation.as_set().n_pieces(),
    );
    let golden = include_str!("golden/cholesky_pairspace.json");
    assert_eq!(
        actual, golden,
        "pair-space counts drifted from tests/golden/cholesky_pairspace.json — \
         if the change is intentional, update the golden with the printed left value"
    );
}
