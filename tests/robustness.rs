//! Robustness properties of the error surface and the degradation ladder.
//!
//! Three families of guarantees (see `docs/ROBUSTNESS.md`):
//!
//! 1. Every [`RcpError`] variant renders a non-empty, self-describing
//!    `Display`, and that rendering round-trips bit-for-bit through the
//!    `--json` error field (`rcp_cli::error_json`).
//! 2. A budget-bounded session degrades instead of failing: the analysis
//!    lands on the screened-conservative rung carrying the typed
//!    `BudgetExceeded` cause, and the sequential rung still executes
//!    bit-identically.
//! 3. Injected worker panics cross the executor boundary as typed
//!    `WorkerPanic` data with their context, never as an unwind.

use rcp_json::Json;
use recurrence_chains::cli::{cmd_analyze, error_json, Options};
use recurrence_chains::core::PlanUnavailable;
use recurrence_chains::guard::BudgetSpec;
use recurrence_chains::prelude::*;
use recurrence_chains::session::DegradationLevel;

/// One representative of every `RcpError` variant.  Extending the enum
/// without extending this list is caught by the `match` below being
/// non-exhaustive — the compiler, not a reviewer, enforces coverage.
fn every_error_variant() -> Vec<RcpError> {
    let parse = RcpError::parse(
        "bad.loop",
        recurrence_chains::lang::parse_program("PROGRAM p\nDO I = , 9\nENDDO\nEND\n").unwrap_err(),
    );
    vec![
        parse,
        RcpError::UnknownParameter {
            program: "p".into(),
            name: "Q".into(),
            declared: vec!["N".into()],
        },
        RcpError::MissingParameter {
            program: "p".into(),
            name: "N".into(),
        },
        RcpError::UnboundVariable {
            program: "p".into(),
            detail: recurrence_chains::loopir::UnboundVariable {
                variable: recurrence_chains::loopir::UnknownVariable {
                    name: "Q".into(),
                    expr: "Q + 1".into(),
                },
                context: "subscript 1 of a".into(),
            },
        },
        RcpError::GranularityUnavailable {
            program: "p".into(),
            reason: "no loop-level view exists".into(),
        },
        RcpError::PlanUnavailable {
            reason: PlanUnavailable::NoCoupledPair,
        },
        RcpError::UnknownScheme {
            name: "zigzag".into(),
            known: vec!["recurrence-chains"],
        },
        RcpError::SchemeUnsupported {
            scheme: "pdm",
            reason: "requires loop-level granularity".into(),
        },
        RcpError::UnknownWorkload {
            name: "nonesuch".into(),
        },
        RcpError::UnknownCommand {
            name: "explode".into(),
            known: vec!["parse", "analyze"],
        },
        RcpError::BudgetExceeded {
            stage: "fm-projection".into(),
            spent: 1001,
            limit: 1000,
        },
        RcpError::WorkerPanic {
            message: "index out of bounds".into(),
            context: vec!["par_map item 13".into(), "executor worker 2".into()],
        },
    ]
}

#[test]
fn every_rcp_error_display_is_non_empty_and_round_trips_through_json() {
    let variants = every_error_variant();
    // Compile-time completeness: a new variant fails this match.
    for error in &variants {
        match error {
            RcpError::Parse { .. }
            | RcpError::UnknownParameter { .. }
            | RcpError::MissingParameter { .. }
            | RcpError::UnboundVariable { .. }
            | RcpError::GranularityUnavailable { .. }
            | RcpError::PlanUnavailable { .. }
            | RcpError::UnknownScheme { .. }
            | RcpError::SchemeUnsupported { .. }
            | RcpError::UnknownWorkload { .. }
            | RcpError::UnknownCommand { .. }
            | RcpError::BudgetExceeded { .. }
            | RcpError::WorkerPanic { .. } => {}
        }
        let display = error.to_string();
        assert!(!display.trim().is_empty(), "{error:?} renders empty");
        assert!(
            !display.contains("RcpError"),
            "{error:?} leaks the Rust type name into user output: {display}"
        );
        // The `--json` error field round-trips the Display bit-for-bit
        // (escaping, unicode, backticks and all).
        let rendered = error_json(error).pretty();
        let parsed = Json::parse(&rendered)
            .unwrap_or_else(|e| panic!("{error:?}: error_json output is not valid JSON: {e}"));
        assert_eq!(
            parsed["error"].as_str(),
            Some(display.as_str()),
            "{error:?} does not survive the JSON round-trip"
        );
    }
}

#[test]
fn budget_exceeded_display_names_its_stage_and_both_counters() {
    for stage in [
        "screen",
        "pair-analysis",
        "fm-projection",
        "int-solve",
        "chains",
        "partition",
        "execute",
    ] {
        let error = RcpError::BudgetExceeded {
            stage: stage.into(),
            spent: 7,
            limit: 5,
        };
        let display = error.to_string();
        assert!(display.contains(&format!("`{stage}`")), "{display}");
        assert!(display.contains('7') && display.contains('5'), "{display}");
    }
}

/// Acceptance: a deadline/work-bounded analyze degrades to the
/// screened-conservative rung, reports the typed `BudgetExceeded` cause,
/// and the sequential rung still runs the program bit-identically.
#[test]
fn a_bounded_session_walks_the_ladder_and_stays_sound() {
    let config = Config::new()
        .with_param("N1", 8)
        .with_param("N2", 8)
        .with_budget(BudgetSpec::default().with_max_work(1));
    let analyzed = Session::with_config(config).bundled("example1").unwrap();
    let report = analyzed.degradation().expect("one work unit cannot finish");
    assert_eq!(report.level, DegradationLevel::ScreenedConservative);
    assert!(matches!(report.cause, RcpError::BudgetExceeded { .. }));
    assert_eq!(analyzed.degradation_level(), report.level);

    // The exact partition is gone — its absence is the typed cause...
    let err = analyzed.partition().unwrap_err();
    assert!(matches!(err, RcpError::BudgetExceeded { .. }));

    // ...but the sequential rung executes the program identically to an
    // unbounded session.
    let schedule = analyzed.sequential_schedule().unwrap();
    let program = analyzed.program();
    let values = analyzed.config().resolve_params(program, &[]).unwrap();
    let bound = program.bind_params(&values);
    let kernel = RefKernel::new(&bound);
    let degraded = execute_sequential(&schedule, &kernel);

    let unbounded = Session::with_config(Config::new().with_param("N1", 8).with_param("N2", 8))
        .bundled("example1")
        .unwrap();
    let exact = unbounded
        .partition()
        .unwrap()
        .schedule()
        .unwrap()
        .execute_checked()
        .unwrap();
    assert!(
        degraded.diff(&exact.store, 0.0).is_empty(),
        "the sequential rung must be bit-identical to the exact run"
    );
}

/// The same bound surfaces through the CLI: `rcp analyze --budget-work 1`
/// succeeds with the degradation fields, `--no-degrade` is the hard error.
#[test]
fn the_cli_reports_the_ladder_alongside_fallback_reason() {
    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/loops/example1.loop"
    ))
    .unwrap();
    let opts = Options {
        params: vec![("N1".into(), 8), ("N2".into(), 8)],
        budget_work: Some(1),
        ..Options::default()
    };
    let report = cmd_analyze(&source, "example1.loop", &opts).unwrap();
    assert!(!report.failed);
    assert_eq!(
        report.data["degradation"].as_str(),
        Some("screened-conservative")
    );
    let cause = report.data["degradation_cause"].as_str().unwrap();
    assert!(cause.starts_with("budget exceeded in stage `"), "{cause}");

    let hard = Options {
        no_degrade: true,
        ..opts
    };
    let err = cmd_analyze(&source, "example1.loop", &hard).unwrap_err();
    assert!(matches!(err, RcpError::BudgetExceeded { .. }), "{err}");
}

/// A panicking kernel crosses the executor as a typed `WorkerPanic` whose
/// message and worker context survive — never as an unwind.
#[test]
fn worker_panics_cross_the_session_api_as_typed_data() {
    let config = Config::new().with_param("N1", 6).with_param("N2", 6);
    let analyzed = Session::with_config(config).bundled("example1").unwrap();
    let scheduled = analyzed.partition().unwrap().schedule().unwrap();
    let schedule = scheduled.schedule().clone();
    let kernel = recurrence_chains::runtime::FnKernel(
        |_stmt: usize, _idx: &[i64], _store: &mut dyn recurrence_chains::runtime::StoreView| {
            panic!("injected kernel panic")
        },
    );
    let interrupt = recurrence_chains::guard::catch(|| {
        // Force the worker pool (the cost model would run this small nest
        // inline, where no worker context exists to preserve).
        let executor = ParallelExecutor::new(2).with_sequential_fallback(false);
        executor.execute(&schedule, &kernel);
    })
    .expect_err("the kernel panic must be caught");
    let error: RcpError = interrupt.into();
    match &error {
        RcpError::WorkerPanic { message, context } => {
            assert!(message.contains("injected kernel panic"), "{message}");
            assert!(
                context.iter().any(|c| c.contains("worker")),
                "context must name the worker: {context:?}"
            );
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}
