//! Property-based tests: the partitioning invariants hold for *random*
//! coupled-subscript loops, not just for the paper's examples.
//!
//! For every generated loop the test checks the full pipeline:
//! analysis → Algorithm 1 → schedule → execution, asserting
//!
//! * the three partition sets (or dataflow stages) cover the iteration
//!   space exactly once and respect every dependence,
//! * chains are monotonic and disjoint whenever the recurrence branch is
//!   taken,
//! * the parallel schedule computes exactly what the sequential loop
//!   computes,
//! * the Theorem-1 critical-path bound holds whenever `α > 1`.
//!
//! The generators are driven by the workspace's deterministic [`SmallRng`]
//! with fixed seeds (the offline stand-in for proptest strategies), so
//! every run exercises the same case set.

use recurrence_chains::core::longest_chain;
use recurrence_chains::loopir::expr::{c, v};
use recurrence_chains::loopir::program::build::{loop_, stmt};
use recurrence_chains::loopir::{ArrayRef, Program};
use recurrence_chains::prelude::*;
use recurrence_chains::presburger::{DenseRelation, DenseSet};
use recurrence_chains::workloads::SmallRng;

/// A random 2-deep loop nest with one write and one read reference whose
/// subscripts are affine with small coefficients — the program family the
/// paper targets.
fn random_program(rng: &mut SmallRng) -> Program {
    // subscript = a*I + b*J + k per dimension
    let coeff = |rng: &mut SmallRng| rng.gen_range(-2..=3);
    let offset = |rng: &mut SmallRng| rng.gen_range(-2..=4);
    let sub = |a: i64, b: i64, k: i64| v("I") * a + v("J") * b + c(k);
    let w1 = sub(coeff(rng), coeff(rng), offset(rng));
    let w2 = sub(coeff(rng), coeff(rng), offset(rng));
    let r1 = sub(coeff(rng), coeff(rng), offset(rng));
    let r2 = sub(coeff(rng), offset(rng), offset(rng));
    Program::new(
        "random",
        &["N"],
        vec![loop_(
            "I",
            c(1),
            v("N"),
            vec![loop_(
                "J",
                c(1),
                v("N"),
                vec![stmt(
                    "S",
                    vec![
                        ArrayRef::write("a", vec![w1, w2]),
                        ArrayRef::read("a", vec![r1, r2]),
                    ],
                )],
            )],
        )],
    )
}

#[test]
fn partition_respects_dependences_and_semantics() {
    let mut rng = SmallRng::seed_from_u64(0x9a27_2004);
    for _case in 0..24 {
        let program = random_program(&mut rng);
        let n = rng.gen_range(4..=8);
        let analysis = DependenceAnalysis::loop_level(&program);
        let params = [n];
        let (phi, rel) = analysis.bind_params(&params);
        let phi_d = DenseSet::from_union(&phi);
        let rd = DenseRelation::from_relation(&rel);

        // Algorithm 1, whichever branch applies.
        let partition = concrete_partition(&analysis, &params);
        assert!(
            partition.validate(&phi_d, &rd).is_empty(),
            "invalid partition: {:?}",
            partition.validate(&phi_d, &rd)
        );
        assert_eq!(partition.stats().total_iterations, (n * n) as usize);

        // Schedule and execute: parallel result == sequential result.
        let schedule = Schedule::from_partition(&analysis, &partition, "random");
        assert!(schedule.validate_coverage(&program, &params).is_empty());
        let kernel = RefKernel::new(&program);
        let sequential = Schedule::sequential(&program, &params);
        let verdict = verify_schedule(&sequential, &schedule, &kernel, 3);
        assert!(
            verdict.passed(),
            "schedule diverges from sequential execution"
        );

        // Theorem 1 whenever the recurrence branch applies and alpha > 1.
        if let ConcretePartition::RecurrenceChains { chains, .. } = &partition {
            if let Ok(plan) = recurrence_chains::core::symbolic_plan(&analysis) {
                let alpha = plan.recurrence.alpha();
                if alpha > recurrence_chains::intlin::Rational::ONE {
                    let l = ((2 * n * n) as f64).sqrt();
                    if let Some(bound) = plan.recurrence.critical_path_bound(l) {
                        assert!(
                            longest_chain(chains) <= bound,
                            "chain of length {} exceeds Theorem-1 bound {}",
                            longest_chain(chains),
                            bound
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn symbolic_and_dense_three_sets_agree() {
    // The symbolic partition (unions of convex sets with parameters) and
    // the dense partition (enumerated points) must agree point-wise
    // whenever the symbolic projections were exact.  Random programs can
    // produce access matrices whose projections need the approximate
    // Fourier-Motzkin path; those cases are skipped here (the paper's
    // workloads never hit that path, asserted in the example tests).
    let mut rng = SmallRng::seed_from_u64(0x3e75_1994);
    for _case in 0..24 {
        let program = random_program(&mut rng);
        let n = rng.gen_range(4..=7);
        let analysis = DependenceAnalysis::loop_level(&program);
        let symbolic =
            recurrence_chains::core::ThreeSetPartition::compute(&analysis.phi, &analysis.relation);
        let approximate = symbolic.p1.is_approximate()
            || symbolic.p2.is_approximate()
            || symbolic.p3.is_approximate()
            || analysis.relation.is_approximate();
        if approximate {
            continue;
        }
        let dense_from_symbolic = symbolic.bind_params(&[n]).to_dense();
        let (phi, rel) = analysis.bind_params(&[n]);
        let direct = recurrence_chains::core::DenseThreeSet::compute(
            &DenseSet::from_union(&phi),
            &DenseRelation::from_relation(&rel),
        );
        assert_eq!(dense_from_symbolic, direct);
    }
}

/// The new `ParallelExecutor` satellite property: parallel and sequential
/// execution produce bit-identical array stores on the synthetic corpus,
/// across thread counts and batching granularities.
#[test]
fn parallel_executor_is_bit_identical_on_the_corpus() {
    use recurrence_chains::runtime::{execute_sequential, ParallelExecutor};
    use recurrence_chains::workloads::random_nest;

    let mut rng = SmallRng::seed_from_u64(2004);
    let mut executed = 0usize;
    for case in 0..20 {
        let program = random_nest(&mut rng, 0.6, case);
        let analysis = DependenceAnalysis::loop_level(&program);
        let params = [7i64];
        let partition = concrete_partition(&analysis, &params);
        let schedule = Schedule::from_partition(&analysis, &partition, "corpus");
        let sequential = Schedule::sequential(&program, &params);
        let kernel = RefKernel::new(&program);
        let reference = execute_sequential(&sequential, &kernel);
        for (threads, min_batch) in [(1, 1), (2, 1), (3, 4), (4, 1024)] {
            let executor = ParallelExecutor::new(threads).with_min_batch_instances(min_batch);
            let result = executor.execute(&schedule, &kernel);
            assert!(
                result.race_free(),
                "corpus case {case}: race with {threads} threads"
            );
            // Bit-identical: zero tolerance in the comparison.
            assert!(
                reference.diff(&result.store, 0.0).is_empty(),
                "corpus case {case}: parallel result differs with {threads} threads"
            );
            executed += 1;
        }
    }
    assert_eq!(executed, 20 * 4);
}
