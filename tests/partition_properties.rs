//! Property-based tests: the partitioning invariants hold for *random*
//! coupled-subscript loops, not just for the paper's examples.
//!
//! For every generated loop the test checks the full pipeline:
//! analysis → Algorithm 1 → schedule → execution, asserting
//!
//! * the three partition sets (or dataflow stages) cover the iteration
//!   space exactly once and respect every dependence,
//! * chains are monotonic and disjoint whenever the recurrence branch is
//!   taken,
//! * the parallel schedule computes exactly what the sequential loop
//!   computes,
//! * the Theorem-1 critical-path bound holds whenever `α > 1`.

use proptest::prelude::*;
use recurrence_chains::core::longest_chain;
use recurrence_chains::loopir::expr::{c, v};
use recurrence_chains::loopir::program::build::{loop_, stmt};
use recurrence_chains::loopir::{ArrayRef, Program};
use recurrence_chains::prelude::*;
use recurrence_chains::presburger::{DenseRelation, DenseSet};

/// A random 2-deep loop nest with one write and one read reference whose
/// subscripts are affine with small coefficients — the program family the
/// paper targets.
fn random_program() -> impl Strategy<Value = Program> {
    // subscript = a*I + b*J + k per dimension
    let coeff = -2i64..=3i64;
    let offset = -2i64..=4i64;
    (
        [coeff.clone(), coeff.clone(), offset.clone()],
        [coeff.clone(), coeff.clone(), offset.clone()],
        [coeff.clone(), coeff.clone(), offset.clone()],
        [coeff, offset.clone(), offset],
    )
        .prop_map(|(w1, w2, r1, r2)| {
            let sub = |a: i64, b: i64, k: i64| v("I") * a + v("J") * b + c(k);
            Program::new(
                "random",
                &["N"],
                vec![loop_(
                    "I",
                    c(1),
                    v("N"),
                    vec![loop_(
                        "J",
                        c(1),
                        v("N"),
                        vec![stmt(
                            "S",
                            vec![
                                ArrayRef::write("a", vec![sub(w1[0], w1[1], w1[2]), sub(w2[0], w2[1], w2[2])]),
                                ArrayRef::read("a", vec![sub(r1[0], r1[1], r1[2]), sub(r2[0], r2[1], r2[2])]),
                            ],
                        )],
                    )],
                )],
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn partition_respects_dependences_and_semantics(program in random_program(), n in 4i64..9) {
        let analysis = DependenceAnalysis::loop_level(&program);
        let params = [n];
        let (phi, rel) = analysis.bind_params(&params);
        let phi_d = DenseSet::from_union(&phi);
        let rd = DenseRelation::from_relation(&rel);

        // Algorithm 1, whichever branch applies.
        let partition = concrete_partition(&analysis, &params);
        prop_assert!(partition.validate(&phi_d, &rd).is_empty(),
            "invalid partition: {:?}", partition.validate(&phi_d, &rd));
        prop_assert_eq!(partition.stats().total_iterations, (n * n) as usize);

        // Schedule and execute: parallel result == sequential result.
        let schedule = Schedule::from_partition(&analysis, &partition, "random");
        prop_assert!(schedule.validate_coverage(&program, &params).is_empty());
        let kernel = RefKernel::new(&program);
        let sequential = Schedule::sequential(&program, &params);
        let verdict = verify_schedule(&sequential, &schedule, &kernel, 3);
        prop_assert!(verdict.passed(), "schedule diverges from sequential execution");

        // Theorem 1 whenever the recurrence branch applies and alpha > 1.
        if let ConcretePartition::RecurrenceChains { chains, .. } = &partition {
            if let Some(plan) = recurrence_chains::core::symbolic_plan(&analysis) {
                let alpha = plan.recurrence.alpha();
                if alpha > recurrence_chains::intlin::Rational::ONE {
                    let l = ((2 * n * n) as f64).sqrt();
                    if let Some(bound) = plan.recurrence.critical_path_bound(l) {
                        prop_assert!(longest_chain(chains) <= bound,
                            "chain of length {} exceeds Theorem-1 bound {}", longest_chain(chains), bound);
                    }
                }
            }
        }
    }

    #[test]
    fn symbolic_and_dense_three_sets_agree(program in random_program(), n in 4i64..8) {
        // The symbolic partition (unions of convex sets with parameters) and
        // the dense partition (enumerated points) must agree point-wise
        // whenever the symbolic projections were exact.  Random programs can
        // produce access matrices whose projections need the approximate
        // Fourier-Motzkin path; those cases are excluded here (the paper's
        // workloads never hit that path, asserted in the example tests).
        let analysis = DependenceAnalysis::loop_level(&program);
        let symbolic = recurrence_chains::core::ThreeSetPartition::compute(&analysis.phi, &analysis.relation);
        let approximate = symbolic.p1.is_approximate()
            || symbolic.p2.is_approximate()
            || symbolic.p3.is_approximate()
            || analysis.relation.is_approximate();
        prop_assume!(!approximate);
        let dense_from_symbolic = symbolic.bind_params(&[n]).to_dense();
        let (phi, rel) = analysis.bind_params(&[n]);
        let direct = recurrence_chains::core::DenseThreeSet::compute(
            &DenseSet::from_union(&phi),
            &DenseRelation::from_relation(&rel),
        );
        prop_assert_eq!(dense_from_symbolic, direct);
    }
}
