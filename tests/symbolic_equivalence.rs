//! The symbolic plan's O(pieces) instantiation is bit-identical to the
//! legacy per-binding concrete partition.
//!
//! The `Planned`-stage promotion (symbolic plan computed once, any binding
//! materialised by `SymbolicPlan::instantiate` without re-binding the
//! relation or re-running Algorithm 1) must change *nothing observable*.
//! These property tests prove it on the paper's examples and 200 random
//! corpus nests, each at several bindings: the instantiated partition
//! equals the legacy `concrete_partition` re-run piece for piece, and the
//! session's symbolic-path schedule replays bit-for-bit (tolerance zero)
//! against sequential execution at 1, 2 and 4 threads.

use recurrence_chains::codegen::Schedule;
use recurrence_chains::core::{concrete_partition, symbolic_plan};
use recurrence_chains::depend::DependenceAnalysis;
use recurrence_chains::loopir::Program;
use recurrence_chains::runtime::{execute_schedule, execute_sequential, RefKernel};
use recurrence_chains::session::{Config, Session};
use recurrence_chains::workloads::{
    example1, example2, example3, random_nest, uniform_chain, SmallRng,
};

/// The per-nest binding sweep: every corpus nest has the single parameter
/// `N`, and every instantiable nest is checked at all three values.
const BINDINGS: [i64; 3] = [8, 10, 13];

/// Diffs `SymbolicPlan::instantiate` against a legacy `concrete_partition`
/// re-run for one program × binding.  Returns `false` when the plan is not
/// instantiable (those nests take the concrete fallback rung by design and
/// carry a typed reason; the session- and fuzz-level oracles cover them).
fn instantiate_matches_concrete(name: &str, program: &Program, values: &[i64]) -> bool {
    let analysis = DependenceAnalysis::loop_level(program);
    let plan = match symbolic_plan(&analysis) {
        Ok(plan) => plan,
        Err(_) => return false,
    };
    let instantiated = match plan.instantiate(values) {
        Ok(partition) => partition,
        Err(_) => return false,
    };
    let concrete = concrete_partition(&analysis, values);
    assert_eq!(
        format!("{instantiated:?}"),
        format!("{concrete:?}"),
        "{name} at {values:?}: instantiated partition diverges from concrete"
    );
    true
}

/// Stages one program × binding through the session (which takes the
/// symbolic instantiation path for these inputs), then replays the
/// recurrence-chains schedule at 1, 2 and 4 threads and diffs the store
/// bit-for-bit against sequential execution.
fn assert_replay_identical(name: &str, program: &Program, values: &[(&str, i64)]) {
    let stage = Session::with_config(Config::new().with_params(values))
        .load(program.clone())
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .partition()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    assert!(
        stage.instantiated(),
        "{name} at {values:?}: expected the symbolic instantiation path, got fallback ({:?})",
        stage.concrete_reason()
    );
    assert_eq!(stage.plan_provenance(), "symbolic", "{name}");
    let scheduled = stage
        .schedule_with("recurrence-chains")
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let kernel = RefKernel::new(stage.runtime_program());
    let sequential = Schedule::sequential(stage.runtime_program(), stage.runtime_values());
    let reference = execute_sequential(&sequential, &kernel);
    for threads in [1usize, 2, 4] {
        let result = execute_schedule(scheduled.schedule(), &kernel, threads);
        assert!(
            result.races.is_empty(),
            "{name} at {values:?}: races at {threads} threads"
        );
        assert!(
            reference.diff(&result.store, 0.0).is_empty(),
            "{name} at {values:?}: stores diverge at {threads} threads"
        );
    }
}

#[test]
fn instantiate_equals_concrete_on_the_paper_examples() {
    for (n1, n2) in [(8i64, 12i64), (10, 10), (14, 9)] {
        assert!(
            instantiate_matches_concrete("example1", &example1(), &[n1, n2]),
            "example1 must be instantiable"
        );
        assert_replay_identical("example1", &example1(), &[("N1", n1), ("N2", n2)]);
    }
    for n in BINDINGS {
        assert!(
            instantiate_matches_concrete("example2", &example2(), &[n]),
            "example2 must be instantiable"
        );
        assert_replay_identical("example2", &example2(), &[("N", n)]);
    }
    for n in [16i64, 24, 40] {
        assert!(
            instantiate_matches_concrete("uniform-chain", &uniform_chain(), &[n]),
            "uniform_chain must be instantiable"
        );
        assert_replay_identical("uniform-chain", &uniform_chain(), &[("N", n)]);
    }
    // Example 3 aggregates coupled subscript pairs: its plan is not
    // instantiable, and the helper must say so rather than silently pass.
    assert!(
        !instantiate_matches_concrete("example3", &example3(), &[10]),
        "example3 is gated (aggregated loop level) and must not instantiate"
    );
}

#[test]
fn instantiate_equals_concrete_on_200_corpus_nests_at_three_bindings() {
    let mut rng = SmallRng::seed_from_u64(42);
    let mut instantiable = Vec::new();
    for id in 0..200usize {
        let nest = random_nest(&mut rng, 0.45, id);
        let name = format!("corpus-{id:03}");
        let mut covered = true;
        for n in BINDINGS {
            covered &= instantiate_matches_concrete(&name, &nest, &[n]);
        }
        if covered {
            instantiable.push((name, nest));
        }
    }
    // The corpus generator mostly emits nests the symbolic plan gates
    // (rank-deficient or multi-pair); the sweep only has teeth if a solid
    // handful instantiate.  The pinned seed yields a stable count.
    assert!(
        instantiable.len() >= 5,
        "expected at least 5 instantiable corpus nests, got {}",
        instantiable.len()
    );
    // Every instantiable nest also replays bit-identically at 1/2/4
    // threads through the session's symbolic path, at every binding.
    for (name, nest) in &instantiable {
        for n in BINDINGS {
            assert_replay_identical(name, nest, &[("N", n)]);
        }
    }
}
