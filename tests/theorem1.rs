//! Theorem 1: the critical path of the recurrence chains is bounded by
//! `⌈log_α(L)⌉ + 1` with `α = max(|det T|, |det T⁻¹|)` and `L` the maximum
//! Euclidean distance inside the iteration space.
//!
//! The bound is checked on the paper's examples across a range of sizes and
//! on randomly generated full-rank coupled reference pairs.

use recurrence_chains::core::{longest_chain, symbolic_plan, ConcretePartition};
use recurrence_chains::depend::DependenceAnalysis;
use recurrence_chains::intlin::Rational;
use recurrence_chains::loopir::expr::{c, v};
use recurrence_chains::loopir::program::build::{loop_, stmt};
use recurrence_chains::loopir::{ArrayRef, Program};
use recurrence_chains::workloads::{example1, example2};

fn check_bound(program: &Program, params: &[i64], diag: f64) {
    let analysis = DependenceAnalysis::loop_level(program);
    let Ok(plan) = symbolic_plan(&analysis) else {
        return;
    };
    let alpha = plan.recurrence.alpha();
    if alpha <= Rational::ONE {
        return; // the theorem assumes alpha > 1
    }
    let partition = recurrence_chains::core::concrete_partition(&analysis, params);
    if let ConcretePartition::RecurrenceChains { chains, .. } = &partition {
        let bound = plan.recurrence.critical_path_bound(diag).unwrap();
        assert!(
            longest_chain(chains) <= bound,
            "{}: chain length {} exceeds bound {} (alpha = {alpha})",
            program.name,
            longest_chain(chains),
            bound
        );
    }
}

#[test]
fn theorem1_holds_for_example1_across_sizes() {
    for (n1, n2) in [(10i64, 10i64), (20, 30), (40, 25), (50, 50)] {
        let diag = (((n1 * n1 + n2 * n2) as f64).sqrt()).ceil();
        check_bound(&example1(), &[n1, n2], diag);
    }
}

#[test]
fn theorem1_holds_for_example2_across_sizes() {
    for n in [8i64, 12, 16, 24, 32] {
        let diag = ((2 * n * n) as f64).sqrt();
        check_bound(&example2(), &[n], diag);
    }
}

#[test]
fn example1_bound_value_from_the_paper() {
    // Example 1 text: the largest partition has at most
    // 1 + ceil(log3(sqrt(N1^2 + N2^2))) iterations.
    let analysis = DependenceAnalysis::loop_level(&example1());
    let plan = symbolic_plan(&analysis).unwrap();
    assert_eq!(plan.recurrence.alpha(), Rational::from_int(3));
    let l = ((300.0f64 * 300.0) + (1000.0 * 1000.0)).sqrt();
    let bound = plan.recurrence.critical_path_bound(l).unwrap();
    assert!(bound <= 8, "log3(1044) + 1 is well under 8, got {bound}");
}

/// Random full-rank coupled pairs: the chain produced by following the
/// recurrence never exceeds the Theorem-1 bound.  (Randomised with a fixed
/// seed — the offline stand-in for the original proptest strategy.)
#[test]
fn theorem1_holds_for_random_full_rank_pairs() {
    let mut rng = recurrence_chains::workloads::SmallRng::seed_from_u64(0x7431);
    for _case in 0..16 {
        let a11 = rng.gen_range(1..=3);
        let a12 = rng.gen_range(0..=2);
        let a22 = rng.gen_range(1..=3);
        let off1 = rng.gen_range(-2..=2);
        let off2 = rng.gen_range(-2..=2);
        let n = rng.gen_range(5..=9);
        // Write reference: a(a11*I + a12*J + off1, a22*J + off2); read: a(I, J).
        let program = Program::new(
            "random-pair",
            &["N"],
            vec![loop_(
                "I",
                c(1),
                v("N"),
                vec![loop_(
                    "J",
                    c(1),
                    v("N"),
                    vec![stmt(
                        "S",
                        vec![
                            ArrayRef::write(
                                "a",
                                vec![
                                    v("I") * a11 + v("J") * a12 + c(off1),
                                    v("J") * a22 + c(off2),
                                ],
                            ),
                            ArrayRef::read("a", vec![v("I"), v("J")]),
                        ],
                    )],
                )],
            )],
        );
        let diag = ((2 * n * n) as f64).sqrt();
        check_bound(&program, &[n], diag);
    }
}
