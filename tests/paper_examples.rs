//! End-to-end integration tests over the paper's examples: analysis →
//! partitioning → schedule → execution, checked against the sequential
//! semantics and against the concrete facts the paper states.

use recurrence_chains::baselines::{pdm_schedule, pl_schedule, unique_sets_schedule};
use recurrence_chains::core::{longest_chain, symbolic_plan};
use recurrence_chains::prelude::*;
use recurrence_chains::presburger::{DenseRelation, DenseSet};
use recurrence_chains::runtime::CostModel;
use recurrence_chains::workloads::{example1, example2, example3, figure2};

/// Helper: concrete dense sets of an analysis.
fn dense(analysis: &DependenceAnalysis, params: &[i64]) -> (DenseSet, DenseRelation) {
    let (phi, rel) = analysis.bind_params(params);
    (
        DenseSet::from_union(&phi),
        DenseRelation::from_relation(&rel),
    )
}

#[test]
fn example1_end_to_end() {
    let program = example1();
    let analysis = DependenceAnalysis::loop_level(&program);
    let params = [30i64, 40];

    // Algorithm 1 selects the recurrence-chain branch; the partition is valid.
    let partition = concrete_partition(&analysis, &params);
    assert_eq!(partition.strategy(), Strategy::RecurrenceChains);
    let (phi, rd) = dense(&analysis, &params);
    assert!(partition.validate(&phi, &rd).is_empty());

    // The schedule covers the program and matches sequential execution.
    let schedule = Schedule::from_partition(&analysis, &partition, "example1-rec");
    assert!(schedule.validate_coverage(&program, &params).is_empty());
    let kernel = RefKernel::new(&program);
    let sequential = Schedule::sequential(&program, &params);
    assert!(verify_schedule(&sequential, &schedule, &kernel, 4).passed());

    // Theorem 1 bound holds for the chains.
    let plan = symbolic_plan(&analysis).unwrap();
    if let ConcretePartition::RecurrenceChains { chains, .. } = &partition {
        let l = (((params[0] * params[0] + params[1] * params[1]) as f64).sqrt()).ceil();
        let bound = plan.recurrence.critical_path_bound(l).unwrap();
        assert!(longest_chain(chains) <= bound);
    }

    // REC exposes more parallelism than PL and at least as much as PDM
    // (modelled speedup ordering of Figure 3, Example 1).
    let model = CostModel::default();
    let (_, rec_pdm) = pdm_schedule(&analysis, &phi, &rd, "example1-pdm");
    let rec_pl = pl_schedule(&analysis, &phi, &rd, "example1-pl");
    let s_rec = model.speedup(&schedule, 4);
    let s_pdm = model.speedup(&rec_pdm, 4);
    let s_pl = model.speedup(&rec_pl, 4);
    // REC and PDM are close under the cost model (the paper's extra REC
    // margin on Example 1 comes from subscript simplification in the
    // generated code); PL cannot parallelize the non-uniform loop at all.
    assert!(
        s_rec >= s_pdm * 0.8,
        "REC {s_rec} should not trail PDM {s_pdm} by much"
    );
    assert!(s_rec > s_pl, "REC {s_rec} must beat PL {s_pl}");
    // Baseline schedules are also correct parallelizations.
    assert!(verify_schedule(&sequential, &rec_pdm, &kernel, 4).passed());
    assert!(verify_schedule(&sequential, &rec_pl, &kernel, 2).passed());
}

#[test]
fn example2_matches_paper_facts() {
    let program = example2();
    let analysis = DependenceAnalysis::loop_level(&program);

    // Paper: at N = 12 the intermediate set is exactly {(2, 6)}.
    let partition = concrete_partition(&analysis, &[12]);
    match &partition {
        ConcretePartition::RecurrenceChains { three_set, .. } => {
            assert_eq!(three_set.p2.to_vec(), vec![vec![2, 6]]);
        }
        _ => panic!("example 2 must use recurrence chains"),
    }
    // REC: 3 fully parallel partitions; UNIQUE: more phases.
    let schedule = Schedule::from_partition(&analysis, &partition, "example2-rec");
    assert_eq!(schedule.n_phases(), 3);
    let (phi, rd) = dense(&analysis, &[12]);
    let unique = unique_sets_schedule(&analysis, &phi, &rd, "example2-unique")
        .expect("example 2's class graph is acyclic");
    assert!(unique.n_phases() > schedule.n_phases());

    // Both compute the sequential result.
    let kernel = RefKernel::new(&program);
    let sequential = Schedule::sequential(&program, &[12]);
    assert!(verify_schedule(&sequential, &schedule, &kernel, 4).passed());
    assert!(verify_schedule(&sequential, &unique, &kernel, 4).passed());

    // Modelled speedup ordering of Figure 3, Example 2: REC >= UNIQUE.
    let model = CostModel::default();
    assert!(model.speedup(&schedule, 4) >= model.speedup(&unique, 4));
}

#[test]
fn example3_empty_intermediate_set() {
    let program = example3();
    let analysis = DependenceAnalysis::statement_level(&program);
    let n = 32i64;
    let (phi, rd) = dense(&analysis, &[n]);
    assert!(!rd.is_empty(), "example 3 has dependences at N = {n}");

    // The paper: the recurrence chain partitioning finds an empty
    // intermediate set, so only P1 and P3 remain and the loop runs in two
    // fully parallel steps.
    let three = recurrence_chains::core::DenseThreeSet::compute(&phi, &rd);
    assert!(
        three.p2.is_empty(),
        "example 3 must have an empty intermediate set"
    );
    assert!(!three.p1.is_empty());
    assert!(!three.p3.is_empty());
    assert!(three.validate(&phi, &rd).is_empty());

    // Executing P1 then P3 as two DOALL phases matches sequential execution.
    let p1_sched = Schedule::doall_phase(&analysis, &three.p1, "p1");
    let p3_sched = Schedule::doall_phase(&analysis, &three.p3, "p3");
    let combined = Schedule {
        name: "example3-rec".to_string(),
        phases: vec![p1_sched.phases[0].clone(), p3_sched.phases[0].clone()],
    };
    assert!(combined.validate_coverage(&program, &[n]).is_empty());
    let kernel = RefKernel::new(&program);
    let sequential = Schedule::sequential(&program, &[n]);
    assert!(verify_schedule(&sequential, &combined, &kernel, 4).passed());
    assert_eq!(
        combined.critical_path(),
        2,
        "example 3 finishes in two iteration steps"
    );
}

#[test]
fn figure2_partition_and_execution() {
    let program = figure2();
    let analysis = DependenceAnalysis::loop_level(&program);
    let partition = concrete_partition(&analysis, &[]);
    let schedule = Schedule::from_partition(&analysis, &partition, "figure2-rec");
    assert_eq!(
        schedule.n_phases(),
        2,
        "figure 2 has an empty intermediate set"
    );
    let kernel = RefKernel::new(&program);
    let sequential = Schedule::sequential(&program, &[]);
    for threads in 1..=4 {
        assert!(verify_schedule(&sequential, &schedule, &kernel, threads).passed());
    }
}

#[test]
fn generated_listing_mentions_every_partition() {
    let analysis = DependenceAnalysis::loop_level(&example1());
    let plan = symbolic_plan(&analysis).unwrap();
    let listing = recurrence_chains::codegen::generate_listing(&plan, "example1");
    for needle in [
        "initial partition",
        "final partition",
        "SUBROUTINE chain",
        "DOALL",
    ] {
        assert!(listing.contains(needle), "listing must contain `{needle}`");
    }
}
