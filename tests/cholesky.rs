//! Example 4 (Cholesky) at reduced parameters: the dataflow partitioning is
//! a valid parallel order and the traced dependence graph is consistent
//! with the executable semantics.
//!
//! The full-size run (NMAT=250, M=4, N=40, NRHS=3; the paper reports 238
//! partitioning steps) is part of the benchmark harness
//! (`paper_results ex4`), which runs in release mode.

use recurrence_chains::codegen::Schedule;
use recurrence_chains::core::{dataflow_levels_indexed, dataflow_stage_sizes};
use recurrence_chains::depend::trace_dependence_graph;
use recurrence_chains::prelude::*;
use recurrence_chains::workloads::{example4_cholesky, CholeskyParams};

#[test]
fn small_cholesky_dataflow_partition_is_valid_and_semantics_preserving() {
    // Bind the parameters into the program: the normalised descending sweep
    // uses `K = N − KD` in its subscripts, so kernels and access maps need a
    // parameter-free program.
    let params = CholeskyParams {
        nmat: 2,
        m: 2,
        n: 5,
        nrhs: 1,
    };
    let program = example4_cholesky().bind_params(&params.as_vec());
    let graph = trace_dependence_graph(&program, &[]);
    assert!(graph.n_instances() > 0);
    assert!(graph.n_edges() > 0);

    // Dataflow layering: every edge goes strictly forward across stages.
    let levels = dataflow_levels_indexed(graph.n_instances(), &graph.edges);
    for &(src, dst) in &graph.edges {
        assert!(
            levels[src as usize] < levels[dst as usize],
            "edge {src}->{dst} does not advance a stage"
        );
    }
    let stages = dataflow_stage_sizes(graph.n_instances(), &graph.edges);
    assert_eq!(stages.iter().sum::<usize>(), graph.n_instances());
    assert!(
        stages.len() > 1,
        "the kernel is not embarrassingly parallel"
    );
    assert!(
        stages.len() < graph.n_instances(),
        "dataflow partitioning must expose some parallelism"
    );

    // Execute the staged schedule and compare with sequential execution.
    let schedule = Schedule::from_dataflow_levels("cholesky-dataflow", &graph.instances, &levels);
    assert!(schedule.validate_coverage(&program, &[]).is_empty());
    let kernel = RefKernel::new(&program);
    let sequential = Schedule::sequential(&program, &[]);
    let verdict = verify_schedule(&sequential, &schedule, &kernel, 4);
    assert!(
        verdict.passed(),
        "parallel Cholesky diverges from sequential execution"
    );
}

#[test]
fn cholesky_step_count_grows_with_the_matrix_order() {
    let steps = |n: i64| {
        let params = CholeskyParams {
            nmat: 2,
            m: 2,
            n,
            nrhs: 1,
        };
        let program = example4_cholesky().bind_params(&params.as_vec());
        let graph = trace_dependence_graph(&program, &[]);
        dataflow_stage_sizes(graph.n_instances(), &graph.edges).len()
    };
    let s5 = steps(5);
    let s10 = steps(10);
    assert!(
        s10 > s5,
        "more columns ({s10}) must need more dataflow steps than fewer ({s5})"
    );
}

#[test]
fn cholesky_l_dimension_is_fully_parallel() {
    // Dependences never cross the vectorised L dimension: two instances of
    // the same statement with different L values are never connected.  This
    // is what the paper's PDM partitioning exploits (DOALL over L).
    let params = CholeskyParams {
        nmat: 3,
        m: 2,
        n: 4,
        nrhs: 1,
    };
    let program = example4_cholesky().bind_params(&params.as_vec());
    let graph = trace_dependence_graph(&program, &[]);
    let stmts = program.statements();
    for &(src, dst) in &graph.edges {
        let (s_id, s_idx) = &graph.instances[src as usize];
        let (d_id, d_idx) = &graph.instances[dst as usize];
        // L is always the innermost loop of its statement except for S4/S1
        // (where it is the second); find its position by name.
        let l_pos = |id: usize| stmts[id].loop_indices.iter().position(|n| n == "L");
        if let (Some(sl), Some(dl)) = (l_pos(*s_id), l_pos(*d_id)) {
            assert_eq!(
                s_idx[sl], d_idx[dl],
                "dependence crosses the L dimension: {:?} -> {:?}",
                s_idx, d_idx
            );
        }
    }
}
