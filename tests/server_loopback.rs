//! Concurrent cache-correctness over loopback: N client threads drive a
//! live `rcpd`, and every response must be bit-identical to the report a
//! single-threaded [`Session`] run produces for the same program and
//! binding.  After the corpus is cached, a concurrent warm burst must do
//! zero re-analysis — proven by a delta-since-mark snapshot of the
//! process-global metrics registry (`depend.screen.pairs` does not move).
//!
//! One test function on purpose: the metrics registry is process-global,
//! so the delta assertion must not interleave with other requests.

use rcp_serve::api::{cmd_analyze, Options};
use rcp_serve::client::Client;
use rcp_serve::{Server, ServerConfig};
use rcp_workloads::bundled_loop;

/// The workloads the threads mix: distinct programs, so the burst
/// exercises distinct cache keys concurrently, not just one hot entry.
const WORKLOADS: &[&str] = &["example1", "tomcatv", "wavefront", "mvt"];

fn expected_body(name: &str) -> String {
    let bundled = bundled_loop(name).expect("bundled workload");
    let opts = Options {
        params: bundled
            .survey_params
            .iter()
            .map(|(n, v)| (n.to_string(), *v))
            .collect(),
        ..Options::default()
    };
    let report = cmd_analyze(bundled.source, name, &opts).expect("single-threaded analyze");
    // The server's JSON bodies are `pretty() + "\n"` — the same shape the
    // CLI prints under `--json`.
    format!("{}\n", report.data.pretty())
}

#[test]
fn concurrent_clients_get_bit_identical_responses_and_warm_bursts_reanalyze_nothing() {
    let server = Server::start(ServerConfig {
        workers: 4,
        cache_capacity: WORKLOADS.len() + 2,
        ..ServerConfig::default()
    })
    .expect("loopback server starts");
    let addr = server.addr().to_string();

    let expected: Vec<(String, String)> = WORKLOADS
        .iter()
        .map(|name| (name.to_string(), expected_body(name)))
        .collect();

    // Cold pass: populate the cache once per workload (serially, so the
    // warm burst below is all hits).
    let client = Client::new(addr.clone());
    for (name, body) in &expected {
        let reply = client
            .post(
                "/v1/analyze",
                &rcp_json::json!({ "workload": name.clone() }),
            )
            .expect("cold analyze responds");
        assert_eq!(reply.status, 200, "{name}: {}", reply.body);
        assert_eq!(&reply.body, body, "{name}: cold response diverges");
    }

    // Concurrent warm burst: 8 threads, each mixing all workloads several
    // times.  Every response must be bit-identical to the single-threaded
    // reference, and the analysis front end must never run.
    let mark = rcp_trace::snapshot();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let addr = addr.clone();
            let expected = &expected;
            scope.spawn(move || {
                let client = Client::new(addr);
                for _ in 0..5 {
                    for (name, body) in expected {
                        let reply = client
                            .post(
                                "/v1/analyze",
                                &rcp_json::json!({ "workload": name.clone() }),
                            )
                            .expect("warm analyze responds");
                        assert_eq!(reply.status, 200, "{name}: {}", reply.body);
                        assert_eq!(&reply.body, body, "{name}: warm response diverges");
                    }
                }
            });
        }
    });
    let delta = rcp_trace::snapshot().delta_since(&mark);
    assert_eq!(
        delta.counter("depend.screen.pairs"),
        0,
        "a warm burst re-ran the dependence screen"
    );
    assert!(
        delta.counter("serve.cache.hits") >= (8 * 5 * WORKLOADS.len()) as u64,
        "the warm burst should be all cache hits"
    );
    assert_eq!(
        delta.counter("serve.cache.misses"),
        0,
        "the warm burst must not miss"
    );

    server.shutdown();
    server.join();
}
