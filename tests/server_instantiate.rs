//! The server's warm partition path is an O(pieces) instantiation: after
//! one cold request has populated the analysis cache, further bindings of
//! the same program must bump `serve.plan.instantiate` without ever
//! re-entering the dependence screen (`depend.screen.pairs` stays flat).
//!
//! One test function on purpose: the metrics registry is process-global,
//! so the delta assertion must not interleave with other requests.

use rcp_serve::client::Client;
use rcp_serve::{Server, ServerConfig};

#[test]
fn warm_bindings_instantiate_the_plan_without_reanalysis() {
    let server = Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("loopback server starts");
    let client = Client::new(server.addr().to_string());

    // Cold request: parse + analyse + plan once, then instantiate N=8.
    let cold = client
        .post(
            "/v1/partition",
            &rcp_json::json!({ "workload": "example2", "params": rcp_json::json!({"N": 8}) }),
        )
        .expect("cold partition responds");
    assert_eq!(cold.status, 200, "{}", cold.body);
    let body = rcp_json::Json::parse(&cold.body).expect("cold body is JSON");
    assert_eq!(
        body.get("plan").and_then(|p| p.as_str()),
        Some("symbolic"),
        "example2 must take the symbolic instantiation path"
    );

    // Two warm bindings: the cached Analyzed serves both straight from the
    // memoised symbolic plan — no re-analysis, no pair re-screening.
    let mark = rcp_trace::snapshot();
    for n in [12i64, 17] {
        let reply = client
            .post(
                "/v1/partition",
                &rcp_json::json!({ "workload": "example2", "params": rcp_json::json!({"N": n}) }),
            )
            .expect("warm partition responds");
        assert_eq!(reply.status, 200, "N={n}: {}", reply.body);
        let body = rcp_json::Json::parse(&reply.body).expect("warm body is JSON");
        assert_eq!(
            body.get("plan").and_then(|p| p.as_str()),
            Some("symbolic"),
            "N={n}: warm binding fell off the symbolic path"
        );
    }
    let delta = rcp_trace::snapshot().delta_since(&mark);
    assert_eq!(
        delta.counter("serve.plan.instantiate"),
        2,
        "each warm binding must be served by a plan instantiation"
    );
    assert_eq!(
        delta.counter("depend.screen.pairs"),
        0,
        "a warm binding re-ran the dependence screen"
    );
    assert_eq!(
        delta.counter("serve.cache.misses"),
        0,
        "warm bindings must hit the analysis cache"
    );

    server.shutdown();
    server.join();
}
