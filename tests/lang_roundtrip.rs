//! Round-trip property tests for `rcp-lang` and golden rejection
//! diagnostics.
//!
//! The round-trip contract is **total**:
//! `parse(pretty(p)) == p.canonicalized()` for *every* program — the
//! printer normalises each statement to canonical reference order
//! (writes first), which is the order the parser produces by
//! construction.  For programs already canonical (the paper's examples
//! 1–4, the figure-2 loop, the Cholesky kernel, the synthetic corpus)
//! this degenerates to `parse(pretty(p)) == p`, and canonical sources
//! are fixed points of `pretty ∘ parse`.

use recurrence_chains::lang::{parse_program, pretty, SourcePos};
use recurrence_chains::loopir::{Node, Program};
use recurrence_chains::workloads::{self, SmallRng, BUNDLED_LOOPS};

fn assert_round_trips(p: &Program) {
    let text = pretty(p);
    let reparsed = parse_program(&text)
        .unwrap_or_else(|e| panic!("{}: canonical text does not parse: {e}\n{text}", p.name));
    assert_eq!(&reparsed, p, "{}: parse(pretty(p)) != p", p.name);
    assert_eq!(
        pretty(&reparsed),
        text,
        "{}: pretty is not a fixed point on its own output",
        p.name
    );
}

/// The total round trip on a program in *any* reference order: printing
/// then parsing lands exactly on the canonical form.
fn assert_total_round_trip(p: &Program) {
    let canonical = p.canonicalized();
    let text = pretty(p);
    let reparsed = parse_program(&text)
        .unwrap_or_else(|e| panic!("{}: printed text does not parse: {e}\n{text}", p.name));
    assert_eq!(
        reparsed, canonical,
        "{}: parse(pretty(p)) != canonicalize(p)",
        p.name
    );
    assert_eq!(
        canonical.canonicalized(),
        canonical,
        "{}: canonicalisation must be idempotent",
        p.name
    );
    assert_eq!(
        pretty(&canonical),
        text,
        "{}: pretty must not depend on the pre-canonical ref order",
        p.name
    );
}

/// Rotates every statement's reference list by `k` positions, producing
/// programs in arbitrary (non-writes-first) reference orders.
fn rotate_refs(p: &Program, k: usize) -> Program {
    fn rotate_nodes(nodes: &[Node], k: usize) -> Vec<Node> {
        nodes
            .iter()
            .map(|node| match node {
                Node::Stmt(s) => {
                    let mut s = s.clone();
                    let n = s.refs.len();
                    if n > 0 {
                        s.refs.rotate_left(k % n);
                    }
                    Node::Stmt(s)
                }
                Node::Loop(l) => {
                    let mut l = l.clone();
                    l.body = rotate_nodes(&l.body, k);
                    Node::Loop(l)
                }
            })
            .collect()
    }
    Program {
        name: p.name.clone(),
        params: p.params.clone(),
        body: rotate_nodes(&p.body, k),
    }
}

#[test]
fn paper_workloads_round_trip() {
    assert_round_trips(&workloads::example1());
    assert_round_trips(&workloads::example2());
    assert_round_trips(&workloads::example3());
    assert_round_trips(&workloads::figure2());
    assert_round_trips(&workloads::figure2_n(7));
    assert_round_trips(&workloads::example4_cholesky());
    assert_round_trips(&workloads::uniform_chain());
}

#[test]
fn synthetic_corpus_round_trips() {
    // The corpus generator drives the same property across hundreds of
    // random nests, mixing coupled and uncoupled subscripts.
    let mut rng = SmallRng::seed_from_u64(2026);
    for id in 0..200 {
        let coupled_fraction = (id % 5) as f64 / 4.0;
        let p = workloads::random_nest(&mut rng, coupled_fraction, id);
        assert_round_trips(&p);
    }
}

#[test]
fn arbitrary_reference_orders_round_trip_to_canonical_form() {
    // Every paper workload and a corpus sample, with each statement's
    // references rotated into every possible order: the round trip is
    // total and always lands on the canonical (writes-first) program.
    let mut programs = vec![
        workloads::example1(),
        workloads::example2(),
        workloads::example3(),
        workloads::figure2(),
        workloads::example4_cholesky(),
        workloads::uniform_chain(),
    ];
    let mut rng = SmallRng::seed_from_u64(77);
    for id in 0..60 {
        programs.push(workloads::random_nest(&mut rng, 0.5, id));
    }
    for p in &programs {
        for k in 0..4 {
            assert_total_round_trip(&rotate_refs(p, k));
        }
    }
}

#[test]
fn parameter_bound_programs_round_trip() {
    // bind_params folds parameters into constants; the result must still
    // round-trip (its name gains a `-bound` suffix, kept by the header).
    let bound = workloads::example1().bind_params(&[6, 9]);
    assert_round_trips(&bound);
    let cholesky = workloads::example4_cholesky().bind_params(&[4, 4, 10, 2]);
    assert_round_trips(&cholesky);
}

#[test]
fn bundled_sources_are_canonical_fixed_points() {
    for bundled in BUNDLED_LOOPS {
        let program = bundled.program();
        assert_round_trips(&program);
    }
}

/// Golden rejection diagnostics: the exact message and position are part
/// of the front end's contract.
#[test]
fn rejection_diagnostics_are_stable() {
    let cases: &[(&str, &str, usize, usize, &str)] = &[
        (
            "bad lower bound",
            "PROGRAM p\nDO I = , 9\nENDDO\nEND\n",
            2,
            8,
            "expected an affine expression, found `,`",
        ),
        (
            "missing upper bound",
            "PROGRAM p\nDO I = 1\nENDDO\nEND\n",
            2,
            9,
            "expected `,` between the loop bounds, found end of line",
        ),
        (
            "non-affine subscript",
            "PROGRAM p\nDO I = 1, 9\n  DO J = 1, 9\n    S: a(I*J) = ...\n  ENDDO\nENDDO\nEND\n",
            4,
            12,
            "non-affine term: expected an integer coefficient after `*`",
        ),
        (
            "unbalanced extra ENDDO",
            "PROGRAM p\nDO I = 1, 9\nENDDO\nENDDO\nEND\n",
            4,
            1,
            "ENDDO without a matching DO",
        ),
        (
            "unbalanced missing ENDDO",
            "PROGRAM p\nDO I = 1, 9\n  DO J = 1, I\n  ENDDO\nEND\n",
            5,
            1,
            "END with 1 unclosed DO loop(s): missing ENDDO",
        ),
        (
            "unknown variable",
            "PROGRAM p\nPARAM N\nDO I = 1, N\n  S: a(K) = ...\nENDDO\nEND\n",
            4,
            8,
            "unknown variable `K`: not a declared PARAM or an enclosing loop index",
        ),
        (
            "missing END",
            "PROGRAM p\nDO I = 1, 9\nENDDO\n",
            4,
            1,
            "missing END",
        ),
        (
            "content after END",
            "PROGRAM p\nEND\nDO I = 1, 9\n",
            3,
            1,
            "content after END",
        ),
        (
            "misplaced min as lower bound",
            "PROGRAM p\nDO I = min(1, 2), 9\nENDDO\nEND\n",
            2,
            8,
            "`min(...)` is only valid as an upper bound",
        ),
        (
            "duplicate parameter",
            "PROGRAM p\nPARAM N, N\nEND\n",
            2,
            10,
            "duplicate parameter `N`",
        ),
        (
            "loop index shadows an enclosing loop",
            "PROGRAM p\nDO I = 1, 9\n  DO I = 1, 9\n  ENDDO\nENDDO\nEND\n",
            3,
            6,
            "loop index `I` shadows an enclosing loop",
        ),
        (
            "statement missing `=`",
            "PROGRAM p\nDO I = 1, 9\n  S: a(I)\nENDDO\nEND\n",
            3,
            10,
            "expected `=` between the write and read references, found end of line",
        ),
    ];
    for (what, src, line, col, message) in cases {
        let err = parse_program(src)
            .map(|p| panic!("{what}: expected a parse error, got program `{}`", p.name))
            .unwrap_err();
        assert_eq!(
            err.pos,
            SourcePos {
                line: *line,
                col: *col
            },
            "{what}: wrong position in {err}"
        );
        assert_eq!(&err.message, message, "{what}");
        // The Display form is what CLI users see.
        assert_eq!(
            err.to_string(),
            format!("line {line}, column {col}: {message}"),
            "{what}"
        );
    }
}
