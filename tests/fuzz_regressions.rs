//! Replays every committed `tests/regressions/*.loop` counterexample
//! through the differential oracle.  A committed regression documents a
//! bug that has since been fixed, so replay must produce no discrepancy;
//! the directory being empty (only the README) is the healthy state.

use std::fs;
use std::path::PathBuf;

use recurrence_chains::fuzz::{parse_regression, run_case, Verdict};

fn regression_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

#[test]
fn committed_regressions_replay_clean() {
    let dir = regression_dir();
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/regressions exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "loop"))
        .collect();
    entries.sort();
    for path in entries {
        let source = fs::read_to_string(&path).unwrap();
        let (program, params) =
            parse_regression(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let result = run_case(&program, &params)
            .unwrap_or_else(|e| panic!("{}: pipeline rejected regression: {e}", path.display()));
        for (scheme, verdict) in &result.verdicts {
            assert!(
                !matches!(verdict, Verdict::Discrepancy(_)),
                "{}: scheme {scheme} still diverges: {verdict:?}",
                path.display()
            );
        }
    }
}
