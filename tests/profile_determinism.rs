//! Profile determinism: two identical `rcp analyze --profile-json` runs
//! must produce **identical** profiles once the (timing-only) `wall_ms`
//! fields are scrubbed — counters, span structure, span counts and gauges
//! are all deterministic for a fixed single-threaded workload.  The
//! schema itself is pinned by the committed golden
//! `tests/golden/example1_profile.json`, which CI also diffs against the
//! real binary's output (docs/OBSERVABILITY.md).
//!
//! The workload is example 1 at N1=N2=10: two reference pairs, below the
//! parallel-analysis threshold, so the whole pipeline is single-threaded
//! and every counter is machine-independent.

use rcp_json::Json;
use recurrence_chains::cli::{run_command, scrub_profile, Options};
use std::path::PathBuf;

fn example1() -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/loops/example1.loop");
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    (source, "example1.loop".to_string())
}

/// One full profiled `analyze` from a cold start: global caches emptied
/// (their counters are part of the profile) and the trace state cleared,
/// exactly what a fresh process running `rcp analyze --profile-json` sees.
fn profiled_analyze() -> Json {
    recurrence_chains::intlin::reset_solver_cache();
    recurrence_chains::presburger::reset_emptiness_cache();
    recurrence_chains::trace::reset();
    let (source, origin) = example1();
    let opts = Options {
        params: vec![("N1".to_string(), 10), ("N2".to_string(), 10)],
        profile: true,
        ..Options::default()
    };
    let report = run_command("analyze", &source, &origin, &opts).expect("analyze succeeds");
    assert!(!report.failed, "{}", report.text);
    let Json::Object(fields) = &report.data else {
        panic!("analyze report must be an object");
    };
    fields
        .iter()
        .find(|(k, _)| k == "profile")
        .map(|(_, v)| v.clone())
        .expect("--profile must attach a profile to the report")
}

#[test]
fn scrubbed_profiles_are_identical_across_runs_and_match_the_golden() {
    let first = scrub_profile(&profiled_analyze());
    let second = scrub_profile(&profiled_analyze());
    assert_eq!(
        first.pretty(),
        second.pretty(),
        "two identical profiled runs must produce identical scrubbed profiles"
    );

    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/example1_profile.json");
    if std::env::var_os("RCP_BLESS").is_some() {
        std::fs::write(&golden_path, format!("{}\n", first.pretty()))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", golden_path.display()));
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", golden_path.display()));
    assert_eq!(
        first.pretty().trim(),
        golden.trim(),
        "the profile schema drifted from tests/golden/example1_profile.json; \
         if the change is intentional, regenerate with\n  \
         RCP_BLESS=1 cargo test --test profile_determinism\n\
         (equivalently: the scrubbed `profile` member of\n  \
         rcp analyze examples/loops/example1.loop --param N1=10 --param N2=10 \
         --profile-json\nwith every wall_ms replaced by 0)"
    );
}

#[test]
fn scrub_only_touches_wall_ms() {
    let profile = profiled_analyze();
    let scrubbed = scrub_profile(&profile);
    // Counters and gauges survive scrubbing bit-for-bit.
    for section in ["counters", "gauges"] {
        assert_eq!(
            profile[section].pretty(),
            scrubbed[section].pretty(),
            "{section} must not be scrubbed"
        );
    }
    // Spans keep name/count structure; only wall_ms is zeroed.
    fn assert_zeroed(node: &Json) {
        assert_eq!(
            node["wall_ms"].as_f64(),
            Some(0.0),
            "wall_ms must be scrubbed"
        );
        if let Some(children) = node["children"].as_array() {
            for child in children {
                assert_zeroed(child);
            }
        }
    }
    for node in scrubbed["spans"].as_array().expect("spans array") {
        assert_zeroed(node);
    }
}
