//! Property tests for the parallel, memoised analysis pipeline:
//!
//! * the HNF/diophantine solver cache returns **bit-identical** results to
//!   the uncached solvers across the synthetic corpus (and across repeated
//!   lookups), and
//! * sharded dependence analysis / dependence tracing produce **exactly**
//!   the relations and edge lists of the single-threaded pipeline on the
//!   paper's examples 1–4 and the Cholesky kernel.

use recurrence_chains::depend::{
    dependence_system, trace_dependence_graph_forced, DependenceAnalysis, Granularity,
};
use recurrence_chains::intlin::{
    hermite_normal_form, hermite_normal_form_cached, solve_linear_system,
    solve_linear_system_cached,
};
use recurrence_chains::workloads::{
    example1, example2, example3, example4_cholesky, figure2, random_nest, CholeskyParams, SmallRng,
};

#[test]
fn cached_solvers_are_bit_identical_across_the_corpus() {
    // Every dependence system the corpus classifier screens, across several
    // coupled-subscript mixes, solved cached and uncached — including the
    // second, cache-hitting lookup.
    let mut checked = 0usize;
    for (seed, coupled) in [(2004u64, 0.45), (7, 1.0), (11, 0.0), (13, 0.7)] {
        let mut rng = SmallRng::seed_from_u64(seed);
        for id in 0..60 {
            let nest = random_nest(&mut rng, coupled, id);
            let stmts = nest.statements();
            let info = &stmts[0];
            let w = nest.loop_access(info, &info.stmt.refs[0]);
            let r = nest.loop_access(info, &info.stmt.refs[1]);
            for (m, rhs) in [
                dependence_system(&w, &r),
                dependence_system(&w, &w),
                dependence_system(&r, &w),
            ] {
                let uncached = solve_linear_system(&m, &rhs);
                assert_eq!(solve_linear_system_cached(&m, &rhs), uncached);
                assert_eq!(solve_linear_system_cached(&m, &rhs), uncached, "hit path");
                let hnf = hermite_normal_form(&m);
                assert_eq!(hermite_normal_form_cached(&m), hnf);
                assert_eq!(hermite_normal_form_cached(&m), hnf, "hit path");
                checked += 1;
            }
        }
    }
    assert!(checked >= 600, "the corpus sweep must exercise the cache");
    // The cache counters live in the rcp-trace registry now; the sweep
    // above must have been counted there.
    let snap = recurrence_chains::trace::snapshot();
    assert!(
        snap.counter("intlin.cache.hnf.hits") + snap.counter("intlin.cache.hnf.misses") > 0,
        "lookups must be counted"
    );
}

#[test]
fn sharded_analysis_matches_single_threaded_on_the_paper_examples() {
    let workloads = [
        ("example1", example1(), Granularity::LoopLevel),
        ("example2", example2(), Granularity::LoopLevel),
        ("figure2", figure2(), Granularity::LoopLevel),
        ("example3", example3(), Granularity::StatementLevel),
    ];
    for (name, program, granularity) in workloads {
        let reference = DependenceAnalysis::analyze_with_threads(&program, granularity, 1);
        for threads in [2, 3, 5, 8] {
            let sharded = DependenceAnalysis::analyze_with_threads(&program, granularity, threads);
            assert_eq!(
                format!("{:?}", reference.relation),
                format!("{:?}", sharded.relation),
                "{name}: relation must not depend on the thread count ({threads})"
            );
            assert_eq!(reference.pairs, sharded.pairs, "{name}");
            assert_eq!(
                reference.n_screened_pairs, sharded.n_screened_pairs,
                "{name}"
            );
        }
        // The default entry point must agree with the explicit one too.
        let default_run = DependenceAnalysis::analyze(&program, granularity);
        assert_eq!(
            format!("{:?}", reference.relation),
            format!("{:?}", default_run.relation),
            "{name}: default analyze must match"
        );
    }
}

#[test]
fn sharded_cholesky_trace_matches_single_threaded() {
    // Example 4 at a reduced size: ~23k statement instances is plenty to
    // push writes and reads of the same elements across shard boundaries.
    let params = CholeskyParams {
        nmat: 6,
        m: 3,
        n: 12,
        nrhs: 2,
    };
    let program = example4_cholesky().bind_params(&params.as_vec());
    // The forced variant bypasses the sequential-fallback cost gate: the
    // point here is exercising the cross-shard merge, not saving time.
    let reference = trace_dependence_graph_forced(&program, &[], 1);
    assert!(reference.n_edges() > 0, "Cholesky must have dependences");
    for threads in [2, 3, 4, 6] {
        let sharded = trace_dependence_graph_forced(&program, &[], threads);
        assert_eq!(reference.instances, sharded.instances);
        assert_eq!(
            reference.edges, sharded.edges,
            "Cholesky trace with {threads} shards must be identical"
        );
    }
}
