//! End-to-end CLI pipeline tests over the bundled `.loop` files: the same
//! code paths the `rcp` binary runs, driven through `rcp_cli`'s command
//! functions.

use recurrence_chains::cli::{
    cmd_analyze, cmd_parse, cmd_partition, cmd_run, run_command, Options,
};
use recurrence_chains::core::{concrete_partition, ConcretePartition};
use recurrence_chains::depend::DependenceAnalysis;
use recurrence_chains::workloads;
use std::path::PathBuf;

fn loop_file(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/loops")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    (source, name.to_string())
}

fn opts(params: &[(&str, i64)]) -> Options {
    Options {
        params: params.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        ..Options::default()
    }
}

/// Acceptance: `rcp partition examples/loops/example1.loop` produces the
/// same three-set partition and chain count as the library-built
/// `rcp_workloads::example1()`.
#[test]
fn cli_partition_of_example1_matches_the_library_pipeline() {
    let (source, origin) = loop_file("example1.loop");
    let report = cmd_partition(&source, &origin, &opts(&[("N1", 10), ("N2", 10)])).unwrap();
    assert!(!report.failed, "{}", report.text);

    let program = workloads::example1();
    let analysis = DependenceAnalysis::loop_level(&program);
    let part = concrete_partition(&analysis, &[10, 10]);
    let ConcretePartition::RecurrenceChains { p1, chains, p3, .. } = &part else {
        panic!("library example 1 must take the recurrence-chain branch");
    };

    assert_eq!(report.data["strategy"].as_str(), Some("RecurrenceChains"));
    assert_eq!(report.data["p1"].as_u64(), Some(p1.len() as u64));
    assert_eq!(
        report.data["p2"].as_u64(),
        Some(chains.iter().map(|c| c.len()).sum::<usize>() as u64)
    );
    assert_eq!(report.data["p3"].as_u64(), Some(p3.len() as u64));
    assert_eq!(report.data["n_chains"].as_u64(), Some(chains.len() as u64));
    assert_eq!(
        report.data["longest_chain"].as_u64(),
        Some(recurrence_chains::core::longest_chain(chains) as u64)
    );
    assert_eq!(report.data["valid"].as_bool(), Some(true));
    assert_eq!(report.data["total_iterations"].as_u64(), Some(100));
}

/// The analyze JSON for example 1 is deterministic and matches the
/// committed golden file (CI runs the same comparison via the binary).
#[test]
fn cli_analyze_of_example1_matches_the_golden_json() {
    let (source, origin) = loop_file("example1.loop");
    let report = cmd_analyze(&source, &origin, &opts(&[("N1", 10), ("N2", 10)])).unwrap();
    let golden = include_str!("golden/example1_analyze.json");
    assert_eq!(
        format!("{}\n", report.data.pretty()),
        golden,
        "rcp analyze output drifted from tests/golden/example1_analyze.json — \
         regenerate with: rcp analyze examples/loops/example1.loop \
         --param N1=10 --param N2=10 --json"
    );
}

/// The analyze JSON for the Cholesky kernel — a deferred-analysis program
/// (parameters in subscripts) on Algorithm 1's dataflow branch, with the
/// typed fallback reason in the payload — matches its golden file too.
#[test]
fn cli_analyze_of_cholesky_matches_the_golden_json() {
    let (source, origin) = loop_file("cholesky.loop");
    let report = cmd_analyze(
        &source,
        &origin,
        &opts(&[("NMAT", 4), ("M", 4), ("N", 10), ("NRHS", 2)]),
    )
    .unwrap();
    let golden = include_str!("golden/cholesky_analyze.json");
    assert_eq!(
        format!("{}\n", report.data.pretty()),
        golden,
        "rcp analyze output drifted from tests/golden/cholesky_analyze.json — \
         regenerate with: rcp analyze examples/loops/cholesky.loop \
         --param NMAT=4 --param M=4 --param N=10 --param NRHS=2 --json"
    );
    assert_eq!(report.data["strategy"].as_str(), Some("Dataflow"));
    assert!(report.data["fallback_reason"]
        .as_str()
        .unwrap()
        .contains("statement-level"));
}

/// Every bundled file goes through `rcp parse` cleanly and round-trips.
#[test]
fn cli_parse_accepts_every_bundled_file() {
    for bundled in workloads::BUNDLED_LOOPS {
        let (source, origin) = loop_file(&format!("{}.loop", bundled.name));
        let report = cmd_parse(&source, &origin).unwrap();
        assert!(!report.failed, "{}: {}", bundled.name, report.text);
        assert_eq!(report.data["round_trips"].as_bool(), Some(true));
    }
}

/// `rcp run` executes the partitioned schedule and verifies it against the
/// sequential reference for both Algorithm-1 branches.
#[test]
fn cli_run_verifies_paper_and_spec_like_workloads() {
    for (file, params) in [
        ("figure2.loop", vec![]),
        ("example1.loop", vec![("N1", 8), ("N2", 8)]),
        ("wavefront.loop", vec![("N", 6)]),
        ("jacobi1d.loop", vec![("TSTEPS", 2), ("N", 10)]),
    ] {
        let (source, origin) = loop_file(file);
        let report = cmd_run(&source, &origin, &opts(&params)).unwrap();
        assert!(!report.failed, "{file}: {}", report.text);
        assert_eq!(report.data["passed"].as_bool(), Some(true), "{file}");
    }
}

/// The dispatcher knows every subcommand and rejects unknown ones with a
/// typed error.
#[test]
fn command_dispatch() {
    let (source, origin) = loop_file("figure2.loop");
    for cmd in ["parse", "fmt", "analyze", "partition", "codegen", "schemes"] {
        let r = run_command(cmd, &source, &origin, &Options::default());
        assert!(r.is_ok(), "{cmd}: {:?}", r.err().map(|e| e.to_string()));
    }
    let err = run_command("explode", &source, &origin, &Options::default()).unwrap_err();
    assert!(matches!(
        err,
        recurrence_chains::session::RcpError::UnknownCommand { .. }
    ));
    assert!(err.to_string().contains("unknown command"));
}

/// Parse failures surface the origin file and position, CLI-style, and
/// keep the structured source position.
#[test]
fn cli_reports_diagnostics_with_the_origin() {
    let err = cmd_parse("PROGRAM p\nDO I = 1 N\nENDDO\nEND\n", "broken.loop").unwrap_err();
    assert_eq!(
        err.to_string(),
        "broken.loop: line 2, column 10: expected `,` between the loop bounds, found identifier `N`"
    );
    match err {
        recurrence_chains::session::RcpError::Parse { error, .. } => {
            assert_eq!((error.pos.line, error.pos.col), (2, 10));
        }
        other => panic!("expected a typed parse error, got {other:?}"),
    }
}

/// `rcp bench --scheme` accepts every name in the Partitioner registry.
#[test]
fn cli_bench_accepts_every_registry_scheme() {
    let (source, origin) = loop_file("example1.loop");
    for scheme in recurrence_chains::session::scheme_names() {
        let o = Options {
            scheme: Some(scheme.to_string()),
            ..opts(&[("N1", 6), ("N2", 6)])
        };
        let r = recurrence_chains::cli::cmd_bench(&source, &origin, &o)
            .unwrap_or_else(|e| panic!("scheme {scheme}: {e}"));
        assert_eq!(r.data["scheme"].as_str(), Some(scheme));
    }
}
