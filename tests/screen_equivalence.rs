//! The pair-space screening engine changes *nothing* about the analysis.
//!
//! The pre-solve screens (shape-bucketed GCD, bounding-box intersection,
//! class-deduplicated diophantine solve) only drop reference pairs whose
//! relation pieces the exact path would have discarded anyway.  These
//! property tests prove it bit-identically against the legacy
//! solver-only screening (`ScreenConfig::exact_only()`), on the paper's
//! examples 1–4, the Cholesky kernel and 200 random corpus nests: the
//! symbolic relation piece for piece, the enumerated `Φ`/`Rd`, the three
//! sets, the chains and the schedule.

use recurrence_chains::codegen::Schedule;
use recurrence_chains::core::{concrete_partition_from_dense, ConcretePartition};
use recurrence_chains::depend::{AnalysisOptions, DependenceAnalysis, Granularity, ScreenConfig};
use recurrence_chains::loopir::Program;
use recurrence_chains::presburger::{DenseRelation, DenseSet};
use recurrence_chains::workloads::{
    example1, example2, example3, example4_cholesky, figure2, random_nest, SmallRng,
};

/// Runs both screening modes and asserts the analyses are bit-identical
/// end to end at the given binding.
fn assert_screen_equivalent(
    name: &str,
    program: &Program,
    granularity: Granularity,
    values: &[i64],
) {
    let screened = DependenceAnalysis::with_options(program, &AnalysisOptions::new(granularity));
    let exact = DependenceAnalysis::with_options(
        program,
        &AnalysisOptions::new(granularity).with_screen(ScreenConfig::exact_only()),
    );
    // 1. The symbolic relation is identical piece for piece: screened
    //    pairs contributed nothing the exact path kept.
    assert_eq!(
        format!("{:?}", screened.relation),
        format!("{:?}", exact.relation),
        "{name}: screened and unscreened relations diverge"
    );
    assert_eq!(screened.pairs, exact.pairs, "{name}: pair lists diverge");
    assert!(
        screened.n_screened_pairs >= exact.n_screened_pairs,
        "{name}: the full screen must drop at least the solver-screened pairs"
    );
    // 2. The enumerated concrete sets are identical.
    let (phi_s, rel_s) = screened.bind_params(values);
    let (phi_e, rel_e) = exact.bind_params(values);
    let phi_s = DenseSet::from_union(&phi_s);
    let phi_e = DenseSet::from_union(&phi_e);
    let rd_s = DenseRelation::from_relation(&rel_s);
    let rd_e = DenseRelation::from_relation(&rel_e);
    assert_eq!(phi_s, phi_e, "{name}: iteration spaces diverge");
    assert_eq!(
        rd_s.iter().collect::<Vec<_>>(),
        rd_e.iter().collect::<Vec<_>>(),
        "{name}: dense relations diverge"
    );
    // 3. The Algorithm-1 partition — three sets, chains, stages — and the
    //    schedule are identical.
    let part_s = concrete_partition_from_dense(&screened, &phi_s, &rd_s);
    let part_e = concrete_partition_from_dense(&exact, &phi_e, &rd_e);
    match (&part_s, &part_e) {
        (
            ConcretePartition::RecurrenceChains {
                p1: sp1,
                chains: sc,
                p3: sp3,
                three_set: st,
            },
            ConcretePartition::RecurrenceChains {
                p1: ep1,
                chains: ec,
                p3: ep3,
                three_set: et,
            },
        ) => {
            assert_eq!(sp1, ep1, "{name}: P1 diverges");
            assert_eq!(st.p2, et.p2, "{name}: P2 diverges");
            assert_eq!(sp3, ep3, "{name}: P3 diverges");
            assert_eq!(sc, ec, "{name}: chains diverge");
        }
        (
            ConcretePartition::Dataflow { stages: ss },
            ConcretePartition::Dataflow { stages: es },
        ) => {
            assert_eq!(ss.stages, es.stages, "{name}: dataflow stages diverge");
        }
        (s, e) => panic!(
            "{name}: strategies diverge (screened {:?}, exact {:?})",
            s.strategy(),
            e.strategy()
        ),
    }
    let sched_s = Schedule::from_partition_bound(&screened, &part_s, values, "screened");
    let sched_e = Schedule::from_partition_bound(&exact, &part_e, values, "screened");
    assert_eq!(
        sched_s.phases, sched_e.phases,
        "{name}: schedules diverge phase for phase"
    );
}

#[test]
fn screening_is_invisible_on_the_paper_examples() {
    assert_screen_equivalent("example1", &example1(), Granularity::LoopLevel, &[10, 10]);
    assert_screen_equivalent("example2", &example2(), Granularity::LoopLevel, &[12]);
    assert_screen_equivalent("example3", &example3(), Granularity::StatementLevel, &[12]);
    assert_screen_equivalent("figure2", &figure2(), Granularity::LoopLevel, &[]);
    assert_screen_equivalent(
        "example1-stmt",
        &example1(),
        Granularity::StatementLevel,
        &[8, 8],
    );
}

#[test]
fn screening_is_invisible_on_cholesky() {
    // The kernel's subscripts mention parameters, so (exactly like the
    // session pipeline) the analysis runs on the parameter-bound program.
    // The box screen fires here — a(L, I, J) with I ≤ −1 can never meet
    // a(L, 0, K) — which is precisely what must not change the relation.
    let bound = example4_cholesky().bind_params(&[2, 2, 6, 1]);
    let screened = DependenceAnalysis::with_options(
        &bound,
        &AnalysisOptions::new(Granularity::StatementLevel),
    );
    assert!(
        screened.screen.by_bbox > 0,
        "the box screen must fire on Cholesky: {:?}",
        screened.screen
    );
    assert_screen_equivalent("cholesky", &bound, Granularity::StatementLevel, &[]);
}

#[test]
fn screening_is_invisible_on_the_corpus() {
    let mut rng = SmallRng::seed_from_u64(2004);
    for id in 0..200 {
        let coupled = (id % 5) as f64 / 4.0;
        let nest = random_nest(&mut rng, coupled, id);
        assert_screen_equivalent(&format!("corpus-{id}"), &nest, Granularity::LoopLevel, &[8]);
    }
}

#[test]
fn screening_is_invisible_on_the_aggregated_views() {
    // The imperfect bundled workloads at loop granularity.
    for (name, values) in [
        ("mvt", vec![5i64]),
        ("lu", vec![6]),
        ("jacobi1d", vec![3, 8]),
    ] {
        let program = recurrence_chains::workloads::bundled_loop(name)
            .unwrap()
            .program();
        assert_screen_equivalent(name, &program, Granularity::LoopLevel, &values);
    }
}
