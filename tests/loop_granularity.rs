//! End-to-end properties of the aggregated loop-level granularity for
//! imperfect nests (`--granularity loop`).
//!
//! The bundled imperfect workloads (mvt, lu, jacobi1d) used to be forced
//! to statement level and from there to the dataflow fallback.  At loop
//! granularity each gets an aggregated partition — chain-shaped when the
//! dependence structure admits disjoint monotonic chains — that is fully
//! validated and whose schedule executes bit-identically to the
//! sequential reference at every thread count.

use recurrence_chains::core::Strategy;
use recurrence_chains::loopir::program::build::stmt;
use recurrence_chains::loopir::{ArrayRef, Program};
use recurrence_chains::session::{Config, GranularityChoice, RcpError, Session};

fn loop_session(params: &[(&str, i64)]) -> Session {
    Session::with_config(
        Config::new()
            .with_params(params)
            .with_granularity(GranularityChoice::Loop),
    )
}

#[test]
fn mvt_gets_a_parallel_chain_partition_at_loop_granularity() {
    let stage = loop_session(&[("N", 6)])
        .bundled("mvt")
        .expect("mvt has a loop-level view")
        .partition()
        .expect("N binds");
    // Two 6x6 nests: 72 aggregation points.
    assert_eq!(stage.phi().len(), 72);
    assert!(
        stage.validate().is_empty(),
        "{:?}",
        stage.validate().first()
    );
    // The x1/x2 accumulation rows are disjoint monotonic chains: the
    // chain-shaped partition applies instead of the dataflow fallback.
    assert_eq!(stage.partition().strategy(), Strategy::RecurrenceChains);
    let stats = stage.stats();
    assert!(
        stats.max_width >= 12,
        "one independent chain per row: {stats:?}"
    );
    let scheduled = stage.schedule().expect("default scheme");
    assert!(
        scheduled.verify().passed(),
        "loop-granularity schedule must replay sequentially"
    );
}

#[test]
fn jacobi1d_aggregates_to_the_sequential_time_loop() {
    let stage = loop_session(&[("TSTEPS", 5), ("N", 12)])
        .bundled("jacobi1d")
        .expect("jacobi1d has a loop-level view")
        .partition()
        .expect("params bind");
    // One point per time step.
    assert_eq!(stage.phi().len(), 5);
    assert!(stage.validate().is_empty());
    // The time chain is a single monotonic chain: chain-shaped partition,
    // honest critical path of length |T| (the outer loop carries all
    // dependences).
    assert_eq!(stage.partition().strategy(), Strategy::RecurrenceChains);
    assert!(stage.stats().critical_path >= 3);
    let scheduled = stage.schedule().expect("default scheme");
    assert!(scheduled.verify().passed());
}

#[test]
fn lu_partitions_validly_at_loop_granularity() {
    let stage = loop_session(&[("N", 8)])
        .bundled("lu")
        .expect("lu has a loop-level view")
        .partition()
        .expect("N binds");
    // Prefix (K, I): one point per pivot/row pair.
    assert!(!stage.phi().is_empty());
    assert!(
        stage.validate().is_empty(),
        "{:?}",
        stage.validate().first()
    );
    let scheduled = stage.schedule().expect("default scheme");
    assert!(scheduled.verify().passed());
}

#[test]
fn aggregated_schedules_match_sequential_at_every_thread_count() {
    use recurrence_chains::runtime::{execute_schedule, execute_sequential, RefKernel};
    for (name, params) in [
        ("mvt", vec![("N", 5)]),
        ("jacobi1d", vec![("TSTEPS", 4), ("N", 10)]),
        ("lu", vec![("N", 6)]),
    ] {
        let stage = loop_session(&params)
            .bundled(name)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .partition()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let scheduled = stage.schedule().unwrap_or_else(|e| panic!("{name}: {e}"));
        let kernel = RefKernel::new(stage.runtime_program());
        let sequential = recurrence_chains::codegen::Schedule::sequential(
            stage.runtime_program(),
            stage.runtime_values(),
        );
        let reference = execute_sequential(&sequential, &kernel);
        for threads in [1usize, 2, 4] {
            let result = execute_schedule(scheduled.schedule(), &kernel, threads);
            assert!(result.races.is_empty(), "{name}: races at {threads}");
            assert!(
                reference.diff(&result.store, 1e-9).is_empty(),
                "{name}: stores diverge at {threads} threads"
            );
        }
    }
}

#[test]
fn single_coupled_pair_in_an_aggregated_view_never_takes_the_unvalidated_branch() {
    // Regression: an imperfect nest with exactly one same-statement
    // coupled pair used to pass `uses_recurrence_chains` on the
    // aggregated view and build chains with the Lemma-1 construction —
    // which assumes unique successors and produced a partition with
    // chain-crossing dependences.  The aggregated view must route through
    // the *validated* component-chain salvage (or dataflow) instead.
    use recurrence_chains::core::{concrete_partition_from_dense, symbolic_plan, PlanUnavailable};
    use recurrence_chains::depend::{AnalysisOptions, DependenceAnalysis, Granularity};
    use recurrence_chains::loopir::expr::{c, v};
    use recurrence_chains::loopir::program::build::loop_;
    use recurrence_chains::presburger::{DenseRelation, DenseSet};

    let p = Program::new(
        "agg-coupled",
        &["N"],
        vec![loop_(
            "t",
            c(1),
            v("N"),
            vec![
                stmt(
                    "S1",
                    vec![
                        ArrayRef::write("a", vec![v("t") + c(1)]),
                        ArrayRef::read("a", vec![v("t")]),
                    ],
                ),
                loop_(
                    "i",
                    c(1),
                    v("N"),
                    vec![stmt(
                        "S3",
                        vec![
                            ArrayRef::write("d", vec![v("i")]),
                            ArrayRef::read("e", vec![v("i")]),
                        ],
                    )],
                ),
            ],
        )],
    );
    let analysis =
        DependenceAnalysis::with_options(&p, &AnalysisOptions::new(Granularity::LoopLevel));
    assert!(analysis.is_aggregated());
    // The recurrence machinery must refuse, with the aggregated reason.
    assert_eq!(
        symbolic_plan(&analysis).unwrap_err(),
        PlanUnavailable::AggregatedLoopLevel
    );
    // The concrete partition must be fully valid whatever branch it takes.
    let (phi, rel) = analysis.bind_params(&[6]);
    let phi = DenseSet::from_union(&phi);
    let rd = DenseRelation::from_relation(&rel);
    let part = concrete_partition_from_dense(&analysis, &phi, &rd);
    assert!(
        part.validate(&phi, &rd).is_empty(),
        "aggregated partition must respect every dependence: {:?}",
        part.validate(&phi, &rd).first()
    );
}

#[test]
fn auto_granularity_is_unchanged_for_imperfect_nests() {
    // The historical behaviour is frozen: without --granularity loop,
    // imperfect nests still analyse at statement level.
    let analyzed = Session::with_config(Config::new().with_param("N", 6))
        .bundled("mvt")
        .unwrap();
    assert_eq!(
        analyzed.granularity(),
        recurrence_chains::depend::Granularity::StatementLevel
    );
}

#[test]
fn programs_without_a_loop_level_view_get_a_typed_error() {
    use recurrence_chains::loopir::expr::{c, v};
    use recurrence_chains::loopir::program::build::loop_;
    // A bare statement next to a loop: neither a perfect nest (the
    // statement-only degenerate case) nor decomposable into loop groups.
    let flat = Program::new(
        "flat",
        &["N"],
        vec![
            stmt(
                "S0",
                vec![
                    ArrayRef::write("a", vec![c(1)]),
                    ArrayRef::read("a", vec![c(2)]),
                ],
            ),
            loop_(
                "I",
                c(1),
                v("N"),
                vec![stmt("S1", vec![ArrayRef::write("a", vec![v("I")])])],
            ),
        ],
    );
    let err = Session::with_config(Config::new().with_granularity(GranularityChoice::Loop))
        .load(flat)
        .unwrap_err();
    assert!(
        matches!(err, RcpError::GranularityUnavailable { .. }),
        "{err}"
    );
    assert!(err.to_string().contains("granularity unavailable"), "{err}");
}

#[test]
fn loop_level_baselines_refuse_the_aggregated_view_with_a_typed_reason() {
    let stage = loop_session(&[("N", 5)])
        .bundled("mvt")
        .unwrap()
        .partition()
        .unwrap();
    for scheme in ["pdm", "pl", "unique"] {
        let err = stage.schedule_with(scheme).unwrap_err();
        assert!(
            matches!(err, RcpError::SchemeUnsupported { .. }),
            "{scheme}: {err}"
        );
    }
    // The paper's own scheme and the structure-free baselines still apply.
    for scheme in ["recurrence-chains", "doacross", "inner-parallel"] {
        assert!(
            stage.schedule_with(scheme).is_ok(),
            "{scheme} must handle the aggregated view"
        );
    }
}
